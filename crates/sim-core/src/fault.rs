//! Deterministic fault injection: cycle-stamped schedules of hardware
//! faults and the recovery accounting the system keeps while degrading
//! gracefully around them.
//!
//! A [`FaultPlan`] is a sorted schedule of [`FaultEvent`]s — link
//! bandwidth degradation windows, full link outages (the system re-routes
//! around the dead edge or fails with a clean
//! `SimError::FabricPartitioned`), transient DRAM faults forcing bounded
//! retransmission, NoC packet drop/duplication (sanitizer bait for the
//! chaos fuzzer), and freeze windows generalizing the old hidden
//! `--stall-inject-at` hook. The plan is applied by the system at *exact*
//! cycles: the engine folds [`FaultPlan::next_event_cycle`] into its
//! event-skip horizon, so same-seed runs are byte-identical under both
//! engines.
//!
//! Plans round-trip through a compact text DSL (used by `--faults`, the
//! campaign journal key, and chaos fixture files):
//!
//! ```text
//! degrade@1000:e3*25        # at cycle 1000, link 3 drops to 25% bandwidth
//! restore@5000:e3           # at cycle 5000, link 3 returns to full speed
//! outage@2000:e7            # at cycle 2000, link 7 dies; routes recompute
//! dramfault@1500:g2n4       # force the next 4 DRAM read retries on GPU 2
//! drop@3000:n2              # drop the next 2 final-hop packet deliveries
//! dropfwd@3000:n1           # drop the next transit forward (at a switch)
//! dup@3500:n1               # duplicate the next packet delivery
//! freeze@4000+500           # no ticks for cycles 4000..4500
//! freeze@4000               # freeze forever (the --stall-inject-at hook)
//! ```
//!
//! Events are comma-separated; edge and GPU indices are *hints* resolved
//! modulo the machine's actual edge/GPU count when the plan is armed, so
//! a randomly generated plan is valid on any topology.

use crate::rng::Stream;

/// One kind of injected hardware fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Throttle one link to `percent`% of its built bandwidth
    /// (1..=100). Lasts until a [`FaultKind::LinkRestore`] of the same
    /// edge (or the end of the run).
    LinkDegrade {
        /// Edge index hint (resolved modulo the edge count at arm time).
        edge: u64,
        /// Remaining bandwidth as a percentage of the built value.
        percent: u32,
    },
    /// Restore one link to its built bandwidth.
    LinkRestore {
        /// Edge index hint.
        edge: u64,
    },
    /// Permanently kill one link. The system recomputes routes around
    /// the dead edge; if any endpoint pair becomes unroutable the run
    /// terminates with `SimError::FabricPartitioned`.
    LinkOutage {
        /// Edge index hint.
        edge: u64,
    },
    /// Force the next `count` DRAM read completions on one GPU to fail
    /// transiently and retransmit after a full re-access penalty.
    DramTransient {
        /// GPU index hint (resolved modulo the GPU count at arm time).
        gpu: u64,
        /// How many read completions to fault.
        count: u32,
    },
    /// Silently drop the next `count` final-hop packet deliveries
    /// (violates NoC conservation — fuzzer bait, not graceful).
    PacketDrop {
        /// How many deliveries to drop.
        count: u32,
    },
    /// Silently drop the next `count` transit *forwards* at a
    /// non-destination node (violates hop conservation — fuzzer bait).
    ForwardDrop {
        /// How many forwards to drop.
        count: u32,
    },
    /// Duplicate the next `count` final-hop packet deliveries (violates
    /// conservation and token lifecycle — fuzzer bait).
    PacketDup {
        /// How many deliveries to duplicate.
        count: u32,
    },
    /// Freeze the system: no component ticks for `cycles` cycles
    /// (`u64::MAX` = forever, subsuming the hidden `--stall-inject-at`
    /// watchdog test hook).
    Freeze {
        /// Freeze duration in cycles (`u64::MAX` = forever).
        cycles: u64,
    },
}

impl FaultKind {
    /// Whether the fault is *graceful*: the system is expected to absorb
    /// it and complete (possibly slower, possibly with a clean
    /// `FabricPartitioned` error). Packet drop/duplication are not —
    /// they deliberately break conservation invariants so the sanitizer
    /// and watchdog oracles can be exercised.
    pub fn is_graceful(self) -> bool {
        !matches!(
            self,
            FaultKind::PacketDrop { .. }
                | FaultKind::ForwardDrop { .. }
                | FaultKind::PacketDup { .. }
        )
    }
}

/// One scheduled fault: a [`FaultKind`] stamped with the exact cycle at
/// which the system applies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault is applied (before the tick of that
    /// cycle, identically under both engines).
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, cycle-stamped schedule of fault events.
///
/// Events are kept sorted by cycle (stable: same-cycle events apply in
/// insertion order). The plan itself is immutable at run time — the
/// system tracks its own cursor — so one plan value can key a campaign
/// cache entry and drive many runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules `kind` at cycle `at`, keeping events sorted by cycle
    /// (stable insertion order for equal cycles).
    pub fn push(&mut self, at: u64, kind: FaultKind) -> &mut Self {
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, kind });
        self
    }

    /// The schedule, sorted by cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the first event at index ≥ `cursor`, for folding into
    /// the engine's event-skip horizon.
    pub fn next_event_cycle(&self, cursor: usize) -> Option<u64> {
        self.events.get(cursor).map(|e| e.at)
    }

    /// A copy of the plan with the event at `index` removed (used by the
    /// chaos fuzzer's greedy minimizer).
    pub fn without_event(&self, index: usize) -> FaultPlan {
        let mut events = self.events.clone();
        events.remove(index);
        FaultPlan { events }
    }

    /// Whether every event is graceful (see [`FaultKind::is_graceful`]).
    pub fn is_graceful(&self) -> bool {
        self.events.iter().all(|e| e.kind.is_graceful())
    }

    /// Encodes the plan as the comma-separated DSL (round-trips through
    /// [`FaultPlan::parse`] byte-exactly).
    pub fn encode(&self) -> String {
        self.events
            .iter()
            .map(encode_event)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses the comma-separated DSL (see the module docs for the
    /// grammar). The empty string is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the first malformed
    /// event.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (at, kind) = parse_event(part)?;
            plan.push(at, kind);
        }
        Ok(plan)
    }

    /// Generates a random plan from a seeded stream: `intensity` scales
    /// the expected event count (≈ `1 + 7 * intensity` events) spread
    /// over `0..horizon` cycles. `allow_lossy` additionally draws the
    /// non-graceful packet drop/duplication kinds (fuzzer mode); without
    /// it every event is graceful and a run is expected to complete.
    /// Edge/GPU indices are hints resolved modulo the machine at arm
    /// time, so the plan is valid on any topology.
    pub fn random(rng: &mut Stream, horizon: u64, intensity: f64, allow_lossy: bool) -> FaultPlan {
        let horizon = horizon.max(2);
        let n = 1 + ((7.0 * intensity.clamp(0.0, 1.0)) as u64);
        let mut plan = FaultPlan::new();
        for _ in 0..n {
            let at = rng.gen_range(1, horizon);
            let kinds = if allow_lossy { 8 } else { 5 };
            let kind = match rng.gen_range(0, kinds) {
                0 => FaultKind::LinkDegrade {
                    edge: rng.next_u64() & 0xFFFF,
                    percent: rng.gen_range(1, 10) as u32 * 10,
                },
                1 => FaultKind::LinkRestore {
                    edge: rng.next_u64() & 0xFFFF,
                },
                2 => FaultKind::LinkOutage {
                    edge: rng.next_u64() & 0xFFFF,
                },
                3 => FaultKind::DramTransient {
                    gpu: rng.next_u64() & 0xFF,
                    count: rng.gen_range(1, 8) as u32,
                },
                4 => FaultKind::Freeze {
                    cycles: rng.gen_range(1, horizon / 2 + 2),
                },
                5 => FaultKind::PacketDrop {
                    count: rng.gen_range(1, 4) as u32,
                },
                6 => FaultKind::ForwardDrop {
                    count: rng.gen_range(1, 4) as u32,
                },
                _ => FaultKind::PacketDup {
                    count: rng.gen_range(1, 3) as u32,
                },
            };
            plan.push(at, kind);
        }
        plan
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

fn encode_event(e: &FaultEvent) -> String {
    let at = e.at;
    match e.kind {
        FaultKind::LinkDegrade { edge, percent } => format!("degrade@{at}:e{edge}*{percent}"),
        FaultKind::LinkRestore { edge } => format!("restore@{at}:e{edge}"),
        FaultKind::LinkOutage { edge } => format!("outage@{at}:e{edge}"),
        FaultKind::DramTransient { gpu, count } => format!("dramfault@{at}:g{gpu}n{count}"),
        FaultKind::PacketDrop { count } => format!("drop@{at}:n{count}"),
        FaultKind::ForwardDrop { count } => format!("dropfwd@{at}:n{count}"),
        FaultKind::PacketDup { count } => format!("dup@{at}:n{count}"),
        FaultKind::Freeze { cycles } if cycles == u64::MAX => format!("freeze@{at}"),
        FaultKind::Freeze { cycles } => format!("freeze@{at}+{cycles}"),
    }
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.parse()
        .map_err(|_| format!("fault plan: bad {what} {s:?}"))
}

fn parse_event(part: &str) -> Result<(u64, FaultKind), String> {
    let (name, rest) = part
        .split_once('@')
        .ok_or_else(|| format!("fault plan: event {part:?} is missing '@<cycle>'"))?;
    // Freeze is the one event with no ':<args>' segment, so it parses
    // before the generic '@<cycle>:<args>' split below.
    if name == "freeze" {
        let (at, cycles) = match rest.split_once('+') {
            Some((at, dur)) => (
                parse_u64("cycle", at)?,
                parse_u64("freeze duration", dur)?.max(1),
            ),
            None => (parse_u64("cycle", rest)?, u64::MAX),
        };
        return Ok((at, FaultKind::Freeze { cycles }));
    }
    let (at, args) = rest
        .split_once(':')
        .ok_or_else(|| format!("fault plan: event {part:?} is missing ':<args>'"))?;
    let at = parse_u64("cycle", at)?;
    let kind = match name {
        "degrade" => {
            let (edge, pct) = args
                .strip_prefix('e')
                .and_then(|a| a.split_once('*'))
                .ok_or_else(|| format!("fault plan: degrade args {args:?}; want e<edge>*<pct>"))?;
            let percent = parse_u64("percent", pct)?;
            if !(1..=100).contains(&percent) {
                return Err(format!(
                    "fault plan: degrade percent {percent} out of range 1..=100"
                ));
            }
            FaultKind::LinkDegrade {
                edge: parse_u64("edge", edge)?,
                percent: percent as u32,
            }
        }
        "restore" => FaultKind::LinkRestore {
            edge: parse_u64(
                "edge",
                args.strip_prefix('e')
                    .ok_or_else(|| format!("fault plan: restore args {args:?}; want e<edge>"))?,
            )?,
        },
        "outage" => FaultKind::LinkOutage {
            edge: parse_u64(
                "edge",
                args.strip_prefix('e')
                    .ok_or_else(|| format!("fault plan: outage args {args:?}; want e<edge>"))?,
            )?,
        },
        "dramfault" => {
            let (gpu, count) = args
                .strip_prefix('g')
                .and_then(|a| a.split_once('n'))
                .ok_or_else(|| {
                    format!("fault plan: dramfault args {args:?}; want g<gpu>n<count>")
                })?;
            FaultKind::DramTransient {
                gpu: parse_u64("gpu", gpu)?,
                count: parse_u64("count", count)?.max(1) as u32,
            }
        }
        "drop" | "dropfwd" | "dup" => {
            let count = parse_u64(
                "count",
                args.strip_prefix('n')
                    .ok_or_else(|| format!("fault plan: {name} args {args:?}; want n<count>"))?,
            )?
            .max(1) as u32;
            match name {
                "drop" => FaultKind::PacketDrop { count },
                "dropfwd" => FaultKind::ForwardDrop { count },
                _ => FaultKind::PacketDup { count },
            }
        }
        other => return Err(format!("fault plan: unknown event kind {other:?}")),
    };
    Ok((at, kind))
}

/// Recovery accounting for one faulted run: how much graceful
/// degradation the system absorbed. Fed to the watchdog's stall
/// diagnostics and reported on `SimResult::recovery` (never part of the
/// journal encoding — like the telemetry timeline, it is observe-only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Fault events applied so far.
    pub faults_applied: u64,
    /// Next-hop route entries rewritten by link-outage recomputation.
    pub reroutes: u64,
    /// Link outages absorbed (the topology stayed routable).
    pub outages: u64,
    /// DRAM read completions retransmitted after a transient fault.
    pub dram_retries: u64,
    /// Packets dropped by injection (non-graceful fuzzer faults).
    pub dropped_packets: u64,
    /// Packets duplicated by injection (non-graceful fuzzer faults).
    pub duplicated_packets: u64,
    /// Cycles spent with at least one link degraded or dead.
    pub degraded_cycles: u64,
    /// Cycles spent frozen by injected stalls.
    pub frozen_cycles: u64,
}

impl RecoverySnapshot {
    /// One-line human rendering used in diagnostics and CLI output.
    pub fn summary(&self) -> String {
        format!(
            "faults={} reroutes={} outages={} dram_retries={} dropped={} duplicated={} \
             degraded_cycles={} frozen_cycles={}",
            self.faults_applied,
            self.reroutes,
            self.outages,
            self.dram_retries,
            self.dropped_packets,
            self.duplicated_packets,
            self.degraded_cycles,
            self.frozen_cycles,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_events_sorted_and_stable() {
        let mut p = FaultPlan::new();
        p.push(50, FaultKind::LinkOutage { edge: 1 });
        p.push(10, FaultKind::Freeze { cycles: 5 });
        p.push(50, FaultKind::LinkOutage { edge: 2 });
        let at: Vec<u64> = p.events().iter().map(|e| e.at).collect();
        assert_eq!(at, [10, 50, 50]);
        // Same-cycle events stay in insertion order (edge 1 before 2).
        assert_eq!(p.events()[1].kind, FaultKind::LinkOutage { edge: 1 });
        assert_eq!(p.events()[2].kind, FaultKind::LinkOutage { edge: 2 });
    }

    #[test]
    fn dsl_round_trips_every_kind() {
        let text = "degrade@1000:e3*25,restore@5000:e3,outage@2000:e7,\
                    dramfault@1500:g2n4,drop@3000:n2,dropfwd@3100:n1,dup@3500:n1,\
                    freeze@4000+500,freeze@6000";
        let plan = FaultPlan::parse(text).expect("valid DSL");
        assert_eq!(plan.len(), 9);
        let reparsed = FaultPlan::parse(&plan.encode()).expect("round trip");
        assert_eq!(plan, reparsed);
        // Sorted encode order, not input order.
        assert!(plan
            .encode()
            .starts_with("degrade@1000:e3*25,dramfault@1500"));
    }

    #[test]
    fn parse_rejects_malformed_events() {
        for bad in [
            "outage",
            "outage@x:e1",
            "outage@5:q1",
            "degrade@5:e1",
            "degrade@5:e1*0",
            "degrade@5:e1*101",
            "dramfault@5:g1",
            "warp@5:n1",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(err.contains("fault plan:"), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_string_is_empty_plan() {
        let p = FaultPlan::parse("").expect("empty ok");
        assert!(p.is_empty());
        assert_eq!(p.encode(), "");
        assert_eq!(p.next_event_cycle(0), None);
    }

    #[test]
    fn next_event_cycle_follows_cursor() {
        let p = FaultPlan::parse("freeze@10+5,outage@20:e1").expect("valid");
        assert_eq!(p.next_event_cycle(0), Some(10));
        assert_eq!(p.next_event_cycle(1), Some(20));
        assert_eq!(p.next_event_cycle(2), None);
    }

    #[test]
    fn without_event_removes_exactly_one() {
        let p = FaultPlan::parse("freeze@10+5,outage@20:e1,drop@30:n1").expect("valid");
        let q = p.without_event(1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.encode(), "freeze@10+5,drop@30:n1");
        assert_eq!(p.len(), 3, "original untouched");
    }

    #[test]
    fn gracefulness_classification() {
        assert!(
            FaultPlan::parse("degrade@1:e0*50,outage@2:e1,dramfault@3:g0n1,freeze@4+9")
                .unwrap()
                .is_graceful()
        );
        for lossy in ["drop@1:n1", "dropfwd@1:n1", "dup@1:n1"] {
            assert!(!FaultPlan::parse(lossy).unwrap().is_graceful(), "{lossy}");
        }
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let mut a = Stream::from_seed(99);
        let mut b = Stream::from_seed(99);
        let pa = FaultPlan::random(&mut a, 10_000, 0.8, true);
        let pb = FaultPlan::random(&mut b, 10_000, 0.8, true);
        assert_eq!(pa, pb);
        assert!(!pa.is_empty());
        // And round-trip through the DSL.
        assert_eq!(FaultPlan::parse(&pa.encode()).unwrap(), pa);
    }

    #[test]
    fn random_graceful_plans_have_no_lossy_events() {
        for seed in 0..32 {
            let mut rng = Stream::from_seed(seed);
            let p = FaultPlan::random(&mut rng, 50_000, 1.0, false);
            assert!(p.is_graceful(), "seed {seed}: {}", p.encode());
        }
    }

    #[test]
    fn recovery_summary_names_every_counter() {
        let r = RecoverySnapshot {
            faults_applied: 3,
            reroutes: 12,
            outages: 1,
            dram_retries: 4,
            ..RecoverySnapshot::default()
        };
        let s = r.summary();
        for key in [
            "faults=3",
            "reroutes=12",
            "outages=1",
            "dram_retries=4",
            "degraded_cycles=0",
        ] {
            assert!(s.contains(key), "{s}");
        }
    }
}
