//! Deterministic, splittable pseudo-random streams.
//!
//! The simulator needs many independent random streams — one per warp, per
//! workload phase, per policy decision point — that are (a) reproducible
//! across runs and platforms and (b) cheap to derive from structured keys
//! like `(workload, kernel, cta, warp)`.
//!
//! [`Stream`] implements xoshiro256** seeded through SplitMix64, the standard
//! recipe from Blackman & Vigna. No OS entropy is ever consulted.

/// SplitMix64 step: used for seeding and for hashing key parts together.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random stream (xoshiro256**).
///
/// # Example
///
/// ```
/// use sim_core::rng::Stream;
/// let mut a = Stream::from_seed(42);
/// let mut b = Stream::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let roll = a.gen_range(0, 6); // die in 0..6
/// assert!(roll < 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    s: [u64; 4],
}

impl Stream {
    /// Creates a stream from a single seed value.
    pub fn from_seed(seed: u64) -> Stream {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Stream { s }
    }

    /// Creates a stream keyed by a sequence of parts, e.g.
    /// `(workload id, kernel, cta, warp)`. Different part sequences give
    /// statistically independent streams.
    pub fn from_parts(parts: &[u64]) -> Stream {
        let mut acc = 0x243F_6A88_85A3_08D3u64; // pi digits, arbitrary non-zero
        for &p in parts {
            let mut sm = acc ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            acc = splitmix64(&mut sm);
        }
        Stream::from_seed(acc)
    }

    /// Derives a child stream keyed by `key`, leaving `self` untouched.
    pub fn derive(&self, key: u64) -> Stream {
        let mut sm = self.s[0] ^ key.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        Stream::from_seed(splitmix64(&mut sm) ^ self.s[2])
    }

    /// Next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        // Lemire-style multiply-shift; bias is negligible for our ranges.
        let span = hi - lo;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Samples an index in `0..weights.len()` proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn gen_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "gen_weighted: weights must be non-empty with positive sum"
        );
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Draws from a (truncated) Zipf-like distribution over `0..n`, with
    /// exponent `s`. Used for hot/cold page popularity in workload models.
    ///
    /// Uses inverse-CDF on a power-law approximation, which is accurate
    /// enough for workload shaping and O(1) per draw.
    pub fn gen_zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "gen_zipf: n must be positive");
        if s <= 0.0 {
            return self.gen_range(0, n);
        }
        // Inverse CDF of p(x) ~ x^-s on [1, n+1): x = (u*(n^(1-s)-1)+1)^(1/(1-s))
        let u = self.gen_f64();
        let one_minus_s = 1.0 - s;
        let x = if (one_minus_s).abs() < 1e-9 {
            ((n as f64).ln() * u).exp()
        } else {
            (u * ((n as f64).powf(one_minus_s) - 1.0) + 1.0).powf(1.0 / one_minus_s)
        };
        (x as u64).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_constructions() {
        let mut a = Stream::from_parts(&[7, 1, 2]);
        let mut b = Stream::from_parts(&[7, 1, 2]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Stream::from_parts(&[1, 2, 3]).next_u64();
        let b = Stream::from_parts(&[1, 2, 4]).next_u64();
        assert_ne!(a, b);
    }

    fn next_u64(mut s: Stream) -> u64 {
        s.next_u64()
    }

    #[test]
    fn derive_is_stable_and_independent() {
        let base = Stream::from_seed(9);
        assert_eq!(next_u64(base.derive(1)), next_u64(base.derive(1)));
        assert_ne!(next_u64(base.derive(1)), next_u64(base.derive(2)));
    }

    #[test]
    fn gen_range_bounds() {
        let mut s = Stream::from_seed(3);
        for _ in 0..10_000 {
            let v = s.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut s = Stream::from_seed(4);
        for _ in 0..10_000 {
            let v = s.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut s = Stream::from_seed(5);
        let hits = (0..100_000).filter(|_| s.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut s = Stream::from_seed(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[s.gen_weighted(&[1.0, 1.0, 8.0])] += 1;
        }
        assert!(counts[2] > counts[0] * 4);
        assert!(counts[2] > counts[1] * 4);
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut s = Stream::from_seed(7);
        let mut lo = 0usize;
        for _ in 0..20_000 {
            let v = s.gen_zipf(1000, 1.1);
            assert!(v < 1000);
            if v < 10 {
                lo += 1;
            }
        }
        // With s=1.1 the first 10 of 1000 items should get far more than 1%.
        assert!(lo > 4_000, "lo={lo}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut s = Stream::from_seed(8);
        let mut lo = 0usize;
        for _ in 0..20_000 {
            if s.gen_zipf(1000, 0.0) < 100 {
                lo += 1;
            }
        }
        let rate = lo as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate={rate}");
    }
}
