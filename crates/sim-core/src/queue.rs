//! Bounded FIFO queues connecting pipeline stages.
//!
//! Hardware queues have finite depth; back-pressure from a full queue is how
//! the simulator models stalls (an SM that cannot enqueue a miss this cycle
//! retries next cycle). [`BoundedQueue`] makes the capacity explicit and
//! refuses pushes beyond it.

use std::collections::VecDeque;

/// A FIFO queue with a hard capacity.
///
/// # Example
///
/// ```
/// use sim_core::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert!(q.try_push(3).is_err()); // full: back-pressure
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-depth queue can never transfer
    /// an item and always indicates a configuration bug.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Attempts to enqueue; returns the item back on a full queue.
    #[inline]
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest item without removing it.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity (pushes will fail).
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining slots before the queue is full.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over queued items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the first item matching `pred` (for FR-FCFS-style
    /// out-of-order picks). O(n); queues here are short by construction.
    pub fn pop_first_matching<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }

    /// Drains every queued item, oldest first.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.items.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let mut q = BoundedQueue::new(1);
        q.try_push("a").unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push("b"), Err("b"));
        assert_eq!(q.free(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn pop_first_matching_removes_mid_queue() {
        let mut q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.pop_first_matching(|&x| x == 3), Some(3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_first_matching(|&x| x == 99), None);
        let out: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, vec![0, 1, 2, 4]);
    }

    #[test]
    fn front_and_iter_do_not_consume() {
        let mut q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        assert_eq!(q.front(), Some(&10));
        assert_eq!(q.iter().count(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let v: Vec<_> = q.drain().collect();
        assert_eq!(v, vec![1, 2]);
        assert!(q.is_empty());
    }
}
