//! Allocation-lean lookup structures for the simulator hot path.
//!
//! The per-cycle datapath used to route every request through
//! `std::collections::HashMap`, paying SipHash plus a heap allocation per
//! in-flight request. This module replaces those with three first-party
//! structures (no external deps — the build is offline):
//!
//! * [`FastMap`] / [`FastSet`] — open-addressed tables over `u64` keys
//!   with a Fibonacci multiply hash and backward-shift deletion (no
//!   tombstones). Used by the MSHR file, TLBs, the sharer directory and
//!   the page-table spill/replica sets.
//! * [`Slab`] — a generational slab with a freelist for in-flight request
//!   state. `insert` hands back a *token* that encodes the slot in its
//!   low [`SLOT_BITS`] bits, so later lookups are a bounds check plus an
//!   equality compare — zero hashing on the fill path. A monotonically
//!   increasing sequence number in the high bits makes tokens unique
//!   across slot reuse (stale tokens miss) and **strictly increasing** in
//!   allocation order, which the engine's delayed-response heap relies on
//!   for deterministic tie-breaking.
//! * [`TagTable`] — a sidecar table mapping tokens issued by *some other*
//!   slab to per-token values (e.g. issue timestamps keyed by an MSHR
//!   tag), indexed directly by the token's slot bits with a full-token
//!   generation check.
//!
//! # Determinism rules
//!
//! Open-addressed tables have no meaningful iteration order, and this
//! module deliberately exposes **no key/value iterators** on [`FastMap`] /
//! [`FastSet`]: every result-visible traversal in the simulator must
//! derive its order from something deterministic (GPU id, slot scan,
//! sorted keys) rather than hash layout. Slot-order traversal of
//! [`Slab`] / [`TagTable`] (via [`Slab::retain_keys`] or
//! [`TagTable::values`]) is deterministic but *allocation-order*-shaped;
//! only order-insensitive reductions (min, count) may use it.

use std::fmt;

/// Number of low token bits that encode the slab slot.
pub const SLOT_BITS: u32 = 20;
/// Mask extracting the slot from a token.
pub const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// Reserved slot value marking tokens that carry no slab entry
/// (fire-and-forget requests that still need a unique, ordered id).
pub const UNTRACKED_SLOT: u64 = SLOT_MASK;

const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

// ---------------------------------------------------------------------
// FastMap / FastSet

/// Open-addressed hash map from `u64` keys to `V`.
///
/// Linear probing, power-of-two capacity, Fibonacci multiply hash taking
/// the *top* bits of the product (good diffusion for line addresses and
/// page numbers, which share low zero bits). Deletion backward-shifts the
/// probe chain, so there are no tombstones and probes never degrade.
///
/// ```
/// use sim_core::fast::FastMap;
/// let mut m: FastMap<u32> = FastMap::new();
/// m.insert(0x1000, 7);
/// assert_eq!(m.get(0x1000), Some(&7));
/// assert_eq!(m.remove(0x1000), Some(7));
/// assert!(m.is_empty());
/// ```
pub struct FastMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    shift: u32,
}

impl<V> Default for FastMap<V> {
    fn default() -> Self {
        FastMap::new()
    }
}

impl<V: Clone> Clone for FastMap<V> {
    fn clone(&self) -> Self {
        FastMap {
            slots: self.slots.clone(),
            len: self.len,
            shift: self.shift,
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for FastMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FastMap {{ len: {} }}", self.len)
    }
}

impl<V> FastMap<V> {
    /// Creates an empty map (capacity 8).
    pub fn new() -> FastMap<V> {
        FastMap::with_capacity(8)
    }

    /// Creates a map sized to hold `cap` entries without growing.
    pub fn with_capacity(cap: usize) -> FastMap<V> {
        // Keep load factor under 3/4.
        let mut n = 8usize;
        while n * 3 < cap * 4 {
            n *= 2;
        }
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        FastMap {
            slots,
            len: 0,
            shift: 64 - n.trailing_zeros(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Index of `key`'s slot, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.slots[i].as_ref().unwrap().1)
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        self.find(key)
            .map(|i| &mut self.slots[i].as_mut().unwrap().1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key -> val`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        if let Some(i) = self.find(key) {
            return Some(std::mem::replace(
                &mut self.slots[i].as_mut().unwrap().1,
                val,
            ));
        }
        self.grow_if_needed();
        let mask = self.mask();
        let mut i = self.home(key);
        while self.slots[i].is_some() {
            i = (i + 1) & mask;
        }
        self.slots[i] = Some((key, val));
        self.len += 1;
        None
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default()` first if absent.
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: u64, default: F) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, default());
        }
        let i = self.find(key).expect("just inserted");
        &mut self.slots[i].as_mut().unwrap().1
    }

    /// Removes `key`, returning its value if present. Backward-shifts the
    /// probe chain so lookups stay tombstone-free.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, val) = self.slots[hole].take().expect("found slot occupied");
        self.len -= 1;
        let mask = self.mask();
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else { break };
            let home = self.home(*k);
            // The entry at `j` may fill the hole iff its probe distance
            // reaches back to (or past) the hole.
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(val)
    }

    /// Drops every entry, keeping capacity.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 4 <= self.slots.len() * 3 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let mut bigger = Vec::with_capacity(new_cap);
        bigger.resize_with(new_cap, || None);
        let old = std::mem::replace(&mut self.slots, bigger);
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = self.mask();
        for slot in old.into_iter().flatten() {
            let mut i = self.home(slot.0);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(slot);
        }
    }
}

/// Open-addressed hash set of `u64` keys (a [`FastMap`] without values).
///
/// ```
/// use sim_core::fast::FastSet;
/// let mut s = FastSet::new();
/// assert!(s.insert(42));
/// assert!(!s.insert(42));
/// assert!(s.contains(42));
/// assert!(s.remove(42));
/// ```
#[derive(Default, Debug, Clone)]
pub struct FastSet {
    map: FastMap<()>,
}

impl FastSet {
    /// Creates an empty set.
    pub fn new() -> FastSet {
        FastSet::default()
    }

    /// Creates a set sized to hold `cap` keys without growing.
    pub fn with_capacity(cap: usize) -> FastSet {
        FastSet {
            map: FastMap::with_capacity(cap),
        }
    }

    /// Inserts `key`; returns `true` if it was newly added.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every key, keeping capacity.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl FromIterator<u64> for FastSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> FastSet {
        let mut s = FastSet::new();
        for k in iter {
            s.insert(k);
        }
        s
    }
}

// ---------------------------------------------------------------------
// Slab

/// Generational slab with a freelist for in-flight request state.
///
/// [`Slab::insert`] returns a token laid out as
/// `base | (seq << SLOT_BITS) | slot`:
///
/// * `slot` (low [`SLOT_BITS`] bits) indexes the backing vector directly,
///   so [`Slab::get`] is a bounds check plus one equality compare;
/// * `seq` increments on every token handed out, which (a) makes reused
///   slots yield distinct tokens so stale lookups miss, and (b) keeps
///   tokens **strictly increasing** in allocation order — the property
///   the engine's `BinaryHeap<Reverse<(due, token)>>` tie-break depends
///   on for bit-identical results;
/// * `base` is a caller constant OR-ed into every token (e.g.
///   `gpu_id << 56`) so several slabs can mint ids in disjoint ranges.
///
/// [`Slab::untracked_token`] mints an ordered, unique token with the
/// reserved [`UNTRACKED_SLOT`] and no entry, for fire-and-forget traffic.
///
/// ```
/// use sim_core::fast::Slab;
/// let mut slab: Slab<&str> = Slab::new();
/// let t = slab.insert("read");
/// assert_eq!(slab.get(t), Some(&"read"));
/// assert_eq!(slab.remove(t), Some("read"));
/// assert_eq!(slab.get(t), None); // stale token misses
/// ```
pub struct Slab<T> {
    slots: Vec<Option<(u64, T)>>,
    free: Vec<u32>,
    next_seq: u64,
    base: u64,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T: Clone> Clone for Slab<T> {
    fn clone(&self) -> Self {
        Slab {
            slots: self.slots.clone(),
            free: self.free.clone(),
            next_seq: self.next_seq,
            base: self.base,
            len: self.len,
        }
    }
}

impl<T> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Slab {{ len: {}, next_seq: {} }}",
            self.len, self.next_seq
        )
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab whose tokens start at `1 << SLOT_BITS`.
    pub fn new() -> Slab<T> {
        Slab::with_base(0)
    }

    /// Creates an empty slab OR-ing `base` into every token. `base` must
    /// not overlap the slot or sequence bits actually used; callers keep
    /// it in the top byte (e.g. `gpu_id << 56`).
    pub fn with_base(base: u64) -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 1, // seq 0 never issued: tokens are always nonzero
            base,
            len: 0,
        }
    }

    #[inline]
    fn mint(&mut self, slot: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.base | (seq << SLOT_BITS) | slot
    }

    /// Stores `value`, returning its token.
    pub fn insert(&mut self, value: T) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                let s = self.slots.len();
                assert!(
                    s < UNTRACKED_SLOT as usize,
                    "slab overflow: > {} concurrent in-flight entries",
                    UNTRACKED_SLOT
                );
                self.slots.push(None);
                s
            }
        };
        let token = self.mint(slot as u64);
        self.slots[slot] = Some((token, value));
        self.len += 1;
        token
    }

    /// Mints a unique, ordered token with no backing entry.
    pub fn untracked_token(&mut self) -> u64 {
        self.mint(UNTRACKED_SLOT)
    }

    #[inline]
    fn slot_of(&self, token: u64) -> Option<usize> {
        let slot = (token & SLOT_MASK) as usize;
        if slot == UNTRACKED_SLOT as usize || slot >= self.slots.len() {
            return None;
        }
        match &self.slots[slot] {
            Some((t, _)) if *t == token => Some(slot),
            _ => None,
        }
    }

    /// Returns the entry for `token`, if it is still live.
    #[inline]
    pub fn get(&self, token: u64) -> Option<&T> {
        self.slot_of(token)
            .map(|s| &self.slots[s].as_ref().unwrap().1)
    }

    /// Returns the entry for `token` mutably, if it is still live.
    #[inline]
    pub fn get_mut(&mut self, token: u64) -> Option<&mut T> {
        self.slot_of(token)
            .map(|s| &mut self.slots[s].as_mut().unwrap().1)
    }

    /// Whether `token` is live.
    #[inline]
    pub fn contains(&self, token: u64) -> bool {
        self.slot_of(token).is_some()
    }

    /// Removes and returns the entry for `token`, freeing its slot.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let slot = self.slot_of(token)?;
        let (_, value) = self.slots[slot].take().expect("live slot occupied");
        self.free.push(slot as u32);
        self.len -= 1;
        Some(value)
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calls `f(token, &entry)` for every live entry in **slot order**
    /// (deterministic, but allocation-shaped — use only for
    /// order-insensitive reductions such as min or count).
    pub fn for_each<F: FnMut(u64, &T)>(&self, mut f: F) {
        for slot in self.slots.iter().flatten() {
            f(slot.0, &slot.1);
        }
    }

    /// Keeps only entries whose token satisfies `keep`, in slot order.
    pub fn retain_keys<F: FnMut(u64) -> bool>(&mut self, mut keep: F) {
        for i in 0..self.slots.len() {
            if let Some((t, _)) = &self.slots[i] {
                if !keep(*t) {
                    self.slots[i] = None;
                    self.free.push(i as u32);
                    self.len -= 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// TagTable

/// Sidecar table keyed by tokens minted from some *other* [`Slab`].
///
/// Indexes directly by the token's slot bits with a full-token
/// generation check, so attaching metadata to an in-flight request (e.g.
/// the issue timestamp of an MSHR tag) costs one bounds check — no
/// hashing. A slot holds at most one generation: inserting a new token
/// whose slot is occupied by a *stale* token replaces the stale entry
/// (its request already retired; see `debug_assert` in
/// [`TagTable::insert_if_absent`]).
///
/// ```
/// use sim_core::fast::{Slab, TagTable};
/// let mut slab: Slab<u8> = Slab::new();
/// let mut meta: TagTable<u64> = TagTable::new();
/// let t = slab.insert(0);
/// meta.insert_if_absent(t, 99);
/// assert_eq!(meta.get(t), Some(&99));
/// assert_eq!(meta.remove(t), Some(99));
/// ```
pub struct TagTable<T> {
    slots: Vec<Option<(u64, T)>>,
    len: usize,
}

impl<T> Default for TagTable<T> {
    fn default() -> Self {
        TagTable::new()
    }
}

impl<T: Clone> Clone for TagTable<T> {
    fn clone(&self) -> Self {
        TagTable {
            slots: self.slots.clone(),
            len: self.len,
        }
    }
}

impl<T> fmt::Debug for TagTable<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TagTable {{ len: {} }}", self.len)
    }
}

impl<T> TagTable<T> {
    /// Creates an empty table.
    pub fn new() -> TagTable<T> {
        TagTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn slot(token: u64) -> usize {
        (token & SLOT_MASK) as usize
    }

    #[inline]
    fn find(&self, token: u64) -> Option<usize> {
        let s = Self::slot(token);
        match self.slots.get(s) {
            Some(Some((t, _))) if *t == token => Some(s),
            _ => None,
        }
    }

    /// Inserts `token -> value` unless `token` already has an entry
    /// (matching `HashMap::entry().or_insert()` semantics). A stale
    /// same-slot entry from a retired generation is replaced.
    pub fn insert_if_absent(&mut self, token: u64, value: T) {
        let s = Self::slot(token);
        debug_assert_ne!(s, UNTRACKED_SLOT as usize, "untracked token in TagTable");
        if s >= self.slots.len() {
            self.slots.resize_with(s + 1, || None);
        }
        match &self.slots[s] {
            Some((t, _)) if *t == token => {}
            Some(_) => {
                // Same slot, different generation: the old request retired
                // without cleaning up. The simulator removes sidecar state
                // before slots recycle, so flag any violation in debug.
                debug_assert!(false, "stale TagTable entry overwritten");
                self.slots[s] = Some((token, value));
            }
            None => {
                self.slots[s] = Some((token, value));
                self.len += 1;
            }
        }
    }

    /// Returns the value for `token`, if present.
    #[inline]
    pub fn get(&self, token: u64) -> Option<&T> {
        self.find(token).map(|s| &self.slots[s].as_ref().unwrap().1)
    }

    /// Removes and returns the value for `token`, if present.
    pub fn remove(&mut self, token: u64) -> Option<T> {
        let s = self.find(token)?;
        let (_, v) = self.slots[s].take().expect("found slot occupied");
        self.len -= 1;
        Some(v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates values in **slot order** (deterministic but
    /// allocation-shaped; order-insensitive reductions only).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().flatten().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove_roundtrip() {
        let mut m: FastMap<u64> = FastMap::new();
        for k in 0..1000u64 {
            assert_eq!(m.insert(k * 128, k), None);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 128), Some(&k));
        }
        for k in (0..1000u64).step_by(2) {
            assert_eq!(m.remove(k * 128), Some(k));
        }
        assert_eq!(m.len(), 500);
        for k in 0..1000u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(k * 128), None);
            } else {
                assert_eq!(m.get(k * 128), Some(&k), "odd key {k} survives");
            }
        }
    }

    #[test]
    fn map_backward_shift_keeps_chains_reachable() {
        // Mirror every operation against std::HashMap under a keyed
        // pseudo-random churn; any probe-chain break shows up as a
        // membership mismatch.
        use std::collections::HashMap;
        let mut m: FastMap<u64> = FastMap::with_capacity(8);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..4096u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 384; // small key space => dense chains
            if x & 4 == 0 {
                assert_eq!(m.remove(key), reference.remove(&key), "step {step}");
            } else {
                assert_eq!(m.insert(key, step), reference.insert(key, step));
            }
        }
        assert_eq!(m.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(m.get(*k), Some(v));
        }
    }

    /// Keys whose home slot is `want` in a 16-slot table (what
    /// `with_capacity(8)` allocates), for engineering collision chains
    /// that wrap past the last slot back to index 0.
    fn keys_homed_at(want: usize, count: usize) -> Vec<u64> {
        let keys: Vec<u64> = (0..200_000u64)
            .filter(|k| (k.wrapping_mul(FIB) >> 60) as usize == want)
            .take(count)
            .collect();
        assert_eq!(keys.len(), count, "key search space too small");
        keys
    }

    #[test]
    fn map_backward_shift_survives_wrap_around() {
        // Four keys all homed at the LAST slot of a 16-slot table occupy
        // slots 15, 0, 1, 2 — a probe chain crossing the wrap boundary.
        // Backward-shift deletion must treat the wrapped distances
        // correctly, or the chain breaks and later keys become
        // unreachable while still counted.
        let keys = keys_homed_at(15, 4);
        for &first in &keys {
            let mut m: FastMap<u64> = FastMap::with_capacity(8);
            assert_eq!(m.slots.len(), 16, "test assumes a 16-slot table");
            for &k in &keys {
                m.insert(k, k ^ 0xABCD);
            }
            // Deleting any link of the chain (head, wrapped middle, tail)
            // must leave every other key reachable with its value.
            m.remove(first);
            for &k in keys.iter().filter(|&&k| k != first) {
                assert_eq!(
                    m.get(k),
                    Some(&(k ^ 0xABCD)),
                    "lost {k:#x} after removing {first:#x}"
                );
            }
            // And the survivors must still be individually removable.
            for &k in keys.iter().filter(|&&k| k != first) {
                assert_eq!(m.remove(k), Some(k ^ 0xABCD));
            }
            assert!(m.is_empty());
        }
    }

    #[test]
    fn map_churn_on_wrapping_chains_matches_std() {
        // Dense churn restricted to keys homed in the top quarter of the
        // table, so nearly every probe chain wraps. Any deletion bug that
        // only manifests across the wrap boundary shows up as a
        // membership mismatch against std::HashMap.
        use std::collections::HashMap;
        let mut pool = Vec::new();
        for h in 12..16 {
            pool.extend(keys_homed_at(h, 2));
        }
        let mut m: FastMap<u64> = FastMap::with_capacity(8);
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x0dd0_91f1_1235_8132u64;
        for step in 0..8192u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = pool[((x >> 33) as usize) % pool.len()];
            if x & 4 == 0 {
                assert_eq!(m.remove(key), reference.remove(&key), "step {step}");
            } else {
                assert_eq!(
                    m.insert(key, step),
                    reference.insert(key, step),
                    "step {step}"
                );
            }
            // Growth is load-driven; with at most 8 live keys the table
            // stays at 16 slots and chains stay maximally wrapped.
            assert_eq!(m.slots.len(), 16, "table must not grow under churn");
        }
        assert_eq!(m.len(), reference.len());
        for (k, v) in &reference {
            assert_eq!(m.get(*k), Some(v));
        }
    }

    #[test]
    fn map_replaces_existing_value() {
        let mut m: FastMap<&str> = FastMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5), Some(&"b"));
    }

    #[test]
    fn map_get_or_insert_with() {
        let mut m: FastMap<Vec<u32>> = FastMap::new();
        m.get_or_insert_with(9, Vec::new).push(1);
        m.get_or_insert_with(9, Vec::new).push(2);
        assert_eq!(m.get(9), Some(&vec![1, 2]));
    }

    #[test]
    fn set_basics() {
        let mut s = FastSet::with_capacity(4);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(7));
        assert!(!s.contains(8));
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.is_empty());
        let from: FastSet = [1u64, 2, 3].into_iter().collect();
        assert_eq!(from.len(), 3);
    }

    #[test]
    fn slab_tokens_strictly_increase_and_stale_misses() {
        let mut slab: Slab<u32> = Slab::new();
        let a = slab.insert(10);
        let u = slab.untracked_token();
        let b = slab.insert(20);
        assert!(a < u && u < b, "tokens strictly increase in mint order");
        assert!(a >= 1 << SLOT_BITS, "tokens are nonzero and tagged");
        assert_eq!(slab.remove(a), Some(10));
        let c = slab.insert(30); // reuses a's slot
        assert_eq!(c & SLOT_MASK, a & SLOT_MASK);
        assert_ne!(c, a);
        assert_eq!(slab.get(a), None, "stale token misses");
        assert_eq!(slab.get(c), Some(&30));
        assert_eq!(slab.get(u), None, "untracked token has no entry");
        assert_eq!(slab.len(), 2);
        assert!(slab.contains(b));
    }

    #[test]
    fn slab_slot_reuse_never_resurrects_old_generations() {
        // One slot recycled many times: every retired token must keep
        // missing, and only the newest generation may hit. This is the
        // property the sanitizer's token-lifecycle check leans on.
        let mut slab: Slab<u64> = Slab::new();
        let mut retired = Vec::new();
        let mut live = slab.insert(0);
        for gen in 1..1000u64 {
            assert_eq!(slab.remove(live), Some(gen - 1));
            retired.push(live);
            live = slab.insert(gen);
            assert_eq!(live & SLOT_MASK, retired[0] & SLOT_MASK, "slot is reused");
        }
        assert_eq!(slab.get(live), Some(&999));
        for &old in &retired {
            assert_eq!(slab.get(old), None, "retired token {old:#x} resurrected");
            assert!(!slab.contains(old));
            assert_eq!(slab.remove(old), None, "stale remove must be a no-op");
        }
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slab_sequence_stays_ordered_near_the_base_boundary() {
        // The sequence field occupies bits [SLOT_BITS, 56) when callers
        // keep `base` in the top byte. Force next_seq to the last values
        // that fit under the base and check tokens still decompose and
        // stay strictly increasing right up to the boundary — the engine
        // heap's tie-break depends on this ordering at any seq.
        let base = 7u64 << 56;
        let seq_limit = 1u64 << (56 - SLOT_BITS); // first seq that would collide with base
        let mut slab: Slab<u32> = Slab::with_base(base);
        slab.next_seq = seq_limit - 4;
        let mut prev = 0u64;
        for i in 0..3u32 {
            let t = slab.insert(i);
            assert_eq!(t >> 56, 7, "base byte intact at seq {}", slab.next_seq - 1);
            assert!(t > prev, "token ordering broke near the seq boundary");
            assert_eq!(slab.get(t), Some(&i));
            prev = t;
        }
        let u = slab.untracked_token();
        assert!(u > prev);
        assert_eq!(u & SLOT_MASK, UNTRACKED_SLOT);
        assert_eq!(slab.get(u), None);
        // The slab keeps working (lookups, removal) at high sequence
        // numbers; entries keep their identity through slot reuse.
        let keep = slab.insert(42);
        assert_eq!(slab.remove(keep), Some(42));
        let next = slab.insert(43);
        assert_eq!(next & SLOT_MASK, keep & SLOT_MASK);
        assert_ne!(next, keep);
        assert_eq!(slab.get(keep), None);
        assert_eq!(slab.get(next), Some(&43));
    }

    #[test]
    fn slab_base_lands_in_top_bits() {
        let base = 3u64 << 56;
        let mut slab: Slab<u8> = Slab::with_base(base);
        let t = slab.insert(1);
        assert_eq!(t >> 56, 3);
        assert_eq!(slab.get(t), Some(&1));
        assert_eq!(slab.remove(t), Some(1));
    }

    #[test]
    fn slab_for_each_and_retain() {
        let mut slab: Slab<u32> = Slab::new();
        let t1 = slab.insert(1);
        let t2 = slab.insert(2);
        let t3 = slab.insert(3);
        let mut seen = Vec::new();
        slab.for_each(|t, v| seen.push((t, *v)));
        assert_eq!(seen, vec![(t1, 1), (t2, 2), (t3, 3)]);
        slab.retain_keys(|t| t != t2);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(t2), None);
        assert!(slab.contains(t1) && slab.contains(t3));
    }

    #[test]
    fn tag_table_follows_entry_semantics() {
        let mut slab: Slab<u8> = Slab::new();
        let mut tab: TagTable<u64> = TagTable::new();
        let t = slab.insert(0);
        tab.insert_if_absent(t, 5);
        tab.insert_if_absent(t, 9); // or_insert: first value wins
        assert_eq!(tab.get(t), Some(&5));
        assert_eq!(tab.values().copied().min(), Some(5));
        assert_eq!(tab.remove(t), Some(5));
        assert!(tab.is_empty());
        assert_eq!(tab.remove(t), None);
    }
}
