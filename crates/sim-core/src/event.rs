//! The [`NextEvent`] trait: components report the earliest cycle at which
//! their state can change, so the engine can skip idle stretches.
//!
//! The contract is *conservative*: a component may report a cycle earlier
//! than its true next state change (the engine just performs a no-op tick
//! there), but it must never report one later — skipping past a real state
//! change would alter simulated time and break the bit-for-bit equivalence
//! with the step-by-1 engine.

use crate::cycle::Cycle;

/// Lower-bound oracle for a component's next state change.
///
/// Implementations answer: "given that I receive no further input, what is
/// the earliest cycle strictly after `now` at which ticking me could do
/// anything?" The required properties are:
///
/// * **Future-only:** any returned cycle is `>= now + 1`.
/// * **Conservative:** the returned cycle is `<=` the true earliest cycle
///   at which the component's observable state changes. Returning an
///   earlier cycle costs a wasted tick; returning a later one is a
///   correctness bug.
/// * **Passive means `None`:** a component with no queued or in-flight
///   work returns `None`, meaning it will never act again without new
///   input. `None` is *not* "don't know" — an unsure component must
///   return `Some(now.next())`.
///
/// Ticking a component at a cycle before its reported next event must be
/// a no-op (no state mutation), since the event-skipping engine relies on
/// never needing those intermediate ticks.
pub trait NextEvent {
    /// Earliest cycle (`>= now + 1`) at which this component's state can
    /// change without outside input, or `None` if it is fully passive.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}

/// Folds two optional event horizons, keeping the earlier one.
///
/// Convenience for aggregating `next_event` across subcomponents:
/// `None` is the identity.
pub fn earliest(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(if x <= y { x } else { y }),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_prefers_smaller_and_ignores_none() {
        assert_eq!(earliest(None, None), None);
        assert_eq!(earliest(Some(Cycle(5)), None), Some(Cycle(5)));
        assert_eq!(earliest(None, Some(Cycle(7))), Some(Cycle(7)));
        assert_eq!(earliest(Some(Cycle(9)), Some(Cycle(4))), Some(Cycle(4)));
    }
}
