//! Livelock/stall detection for the engine loop.
//!
//! A mis-modeled component can leave the simulation ticking forever
//! without retiring a single instruction — the event-horizon engine keeps
//! finding "next events" that never make progress. The [`Watchdog`] turns
//! that silent spin into a hard error: the engine feeds it a monotonic
//! *progress signature* (a sum of retired instructions and drained queue
//! entries), and if the signature is unchanged across a full cycle budget
//! the watchdog reports a stall.
//!
//! The check is amortized O(1): the signature closure is only evaluated
//! once per budget window, not per tick. Because the signature is a
//! monotonic counter, "unchanged between two checkpoints a budget apart"
//! is exactly "zero progress events in the whole window" — there are no
//! missed intermediate transitions.
//!
//! The budget comes from the `CARVE_WATCHDOG_CYCLES` environment variable:
//! unset enables the default budget, `0` disables the watchdog, any other
//! value sets the budget in cycles.

use crate::Cycle;

/// Default no-progress budget in cycles. Generous: a window this long with
/// zero retired instructions and zero drained queue entries has no
/// legitimate cause in any modeled machine (the longest modeled blocking
/// intervals — migration stalls, link backlogs, DRAM service — are
/// thousands of cycles, not millions).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 2_000_000;

/// A detected stall, reported by [`Watchdog::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Cycle at which the stall was detected.
    pub cycle: u64,
    /// Last cycle at which progress was observed.
    pub stalled_since: u64,
    /// The configured budget that was exceeded.
    pub budget: u64,
}

/// Detects absence of forward progress over a configurable cycle budget.
#[derive(Debug, Clone)]
pub struct Watchdog {
    /// `None` = disabled.
    budget: Option<u64>,
    last_signature: u64,
    last_progress_cycle: u64,
    next_check: u64,
}

impl Watchdog {
    /// Creates a watchdog with an explicit budget; `None` disables it.
    pub fn with_budget(budget: Option<u64>) -> Watchdog {
        Watchdog {
            budget,
            last_signature: 0,
            last_progress_cycle: 0,
            next_check: budget.unwrap_or(0),
        }
    }

    /// Creates a watchdog configured from `CARVE_WATCHDOG_CYCLES` (unset =
    /// default budget, `0` = disabled, `n` = budget of `n` cycles). An
    /// unparsable value falls back to the default with a stderr warning.
    pub fn from_env() -> Watchdog {
        let budget = match std::env::var("CARVE_WATCHDOG_CYCLES") {
            Err(_) => Some(DEFAULT_WATCHDOG_CYCLES),
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(0) => None,
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!(
                        "warning: CARVE_WATCHDOG_CYCLES={v:?} is not a cycle count; \
                         using default {DEFAULT_WATCHDOG_CYCLES}"
                    );
                    Some(DEFAULT_WATCHDOG_CYCLES)
                }
            },
        };
        Watchdog::with_budget(budget)
    }

    /// The configured budget, if enabled.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Checks for progress at `now`. `signature` is evaluated only when a
    /// budget window has elapsed; it must return a monotonically
    /// non-decreasing counter of progress events.
    #[inline]
    pub fn check<F: FnOnce() -> u64>(&mut self, now: Cycle, signature: F) -> Result<(), Stall> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        if now.0 < self.next_check {
            return Ok(());
        }
        let sig = signature();
        if sig != self.last_signature {
            self.last_signature = sig;
            self.last_progress_cycle = now.0;
            self.next_check = now.0 + budget;
            return Ok(());
        }
        Err(Stall {
            cycle: now.0,
            stalled_since: self.last_progress_cycle,
            budget,
        })
    }

    /// Resets the progress baseline (e.g. at a kernel boundary, where the
    /// clock may jump over launch overhead without any component activity).
    pub fn rebase(&mut self, now: Cycle, signature: u64) {
        self.last_signature = signature;
        self.last_progress_cycle = now.0;
        if let Some(budget) = self.budget {
            self.next_check = now.0 + budget;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NextEvent;

    #[test]
    fn disabled_watchdog_never_trips() {
        let mut w = Watchdog::with_budget(None);
        for c in 0..1_000_000u64 {
            assert!(w.check(Cycle(c), || 0).is_ok());
        }
    }

    #[test]
    fn steady_progress_never_trips() {
        let mut w = Watchdog::with_budget(Some(100));
        for c in 0..10_000u64 {
            // The signature changes every cycle: progress never stops.
            assert!(w.check(Cycle(c), || c + 1).is_ok());
        }
    }

    #[test]
    fn stall_is_detected_within_two_budgets() {
        let mut w = Watchdog::with_budget(Some(100));
        let mut sig = 0u64;
        let mut tripped_at = None;
        for c in 0..1_000u64 {
            if c < 250 {
                sig += 1; // progress stops at cycle 250
            }
            if let Err(stall) = w.check(Cycle(c), || sig) {
                tripped_at = Some((c, stall));
                break;
            }
        }
        let (c, stall) = tripped_at.expect("watchdog must trip after progress stops");
        // Detection lands within two budget windows of the stall onset: one
        // window to pass the last good checkpoint, one to confirm.
        assert!(c <= 250 + 2 * 100, "tripped too late: {c}");
        // `stalled_since` is checkpoint-granular: it may trail the true
        // onset by up to one budget window, never more.
        assert!(stall.stalled_since <= 250 + 100);
        assert_eq!(stall.budget, 100);
    }

    #[test]
    fn signature_is_only_evaluated_at_checkpoints() {
        let mut w = Watchdog::with_budget(Some(1000));
        let mut evals = 0u32;
        for c in 0..10_000u64 {
            let _ = w.check(Cycle(c), || {
                evals += 1;
                u64::from(evals) // always changing: never trips
            });
        }
        assert!(
            evals <= 11,
            "signature evaluated {evals} times for 10k ticks"
        );
    }

    /// A component that reports an event every cycle but never does
    /// anything — the livelock shape the watchdog exists to catch.
    struct LivelockedComponent;

    impl NextEvent for LivelockedComponent {
        fn next_event(&self, now: Cycle) -> Option<Cycle> {
            Some(Cycle(now.0 + 1)) // "I will act next cycle" — it never does.
        }
    }

    impl LivelockedComponent {
        fn tick(&mut self, _now: Cycle) {}
        fn progress_events(&self) -> u64 {
            0 // no retired instructions, no drained entries, ever
        }
    }

    #[test]
    fn synthetic_non_progressing_component_trips_within_budget() {
        // Drive the same loop shape the engine uses: tick, check watchdog,
        // jump to the component's horizon.
        let budget = 5_000u64;
        let mut component = LivelockedComponent;
        let mut w = Watchdog::with_budget(Some(budget));
        let mut now = Cycle(0);
        let mut stall = None;
        for _ in 0..3 * budget {
            component.tick(now);
            if let Err(s) = w.check(now, || component.progress_events()) {
                stall = Some(s);
                break;
            }
            now = component.next_event(now).expect("component reports events");
        }
        let stall = stall.expect("livelocked component must trip the watchdog");
        assert!(
            stall.cycle <= 2 * budget,
            "detected at {} > 2x budget",
            stall.cycle
        );
        assert_eq!(stall.stalled_since, 0, "no progress was ever observed");
    }

    #[test]
    fn rebase_forgives_a_clock_jump() {
        let mut w = Watchdog::with_budget(Some(100));
        assert!(w.check(Cycle(50), || 7).is_ok());
        // A kernel boundary jumps the clock far ahead with no activity.
        w.rebase(Cycle(10_000), 7);
        assert!(w.check(Cycle(10_050), || 7).is_ok());
        assert!(w.check(Cycle(10_100), || 7).is_err());
    }
}
