//! Time-sliced telemetry and structured event tracing.
//!
//! Two complementary observability surfaces, both **off by default** and
//! free on the hot path when disabled:
//!
//! * **Interval sampling** — every `CARVE_TELEMETRY_INTERVAL` cycles the
//!   engine snapshots per-GPU component counters into a fixed-size
//!   [`IntervalRecord`] (instruction/hit-rate deltas for cumulative
//!   counters, point-in-time occupancy for queues). The records form a
//!   [`Timeline`] that rides along on the run result and serializes to
//!   CSV. Per-interval instruction counts sum to the run's total
//!   instruction count exactly: the engine flushes a final partial
//!   interval at end of run.
//! * **Event tracing** — a [`TraceSink`] receives structured
//!   [`TraceEvent`]s (kernel launch/drain spans per GPU, coherence
//!   broadcast and epoch-invalidation instants, page migrations, watchdog
//!   trips). [`JsonTraceSink`] renders them as Chrome
//!   `chrome://tracing` / Perfetto-compatible JSON; [`NullTraceSink`]
//!   reports itself disabled so the engine skips event construction
//!   entirely.
//!
//! Telemetry is *read-only*: sampling never mutates component state, so a
//! run with sampling enabled produces bit-identical aggregates to one
//! without (this is tested at the system layer).

use std::io::{self, Write};

/// One fixed-size telemetry sample: activity of a single GPU over the
/// half-open cycle interval `[start, end)` (the final record of a run is
/// closed at the run's last cycle). Counter fields are deltas over the
/// interval; occupancy fields (`active_warps`, `waiting_mem_warps`,
/// `mshr_outstanding`, `outbox_backlog`, `link_in_flight`) are
/// point-in-time values observed at the interval boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalRecord {
    /// First cycle covered by this record.
    pub start: u64,
    /// End of the interval (exclusive, except for the final flush record).
    pub end: u64,
    /// GPU index this record describes.
    pub gpu: u32,
    /// Warp instructions retired in the interval.
    pub instructions: u64,
    /// Occupied warp slots across the GPU's SMs at the boundary.
    pub active_warps: u64,
    /// Warps parked waiting on memory at the boundary.
    pub waiting_mem_warps: u64,
    /// L1 hits in the interval (all SMs).
    pub l1_hits: u64,
    /// L1 misses in the interval (all SMs).
    pub l1_misses: u64,
    /// L2 hits in the interval.
    pub l2_hits: u64,
    /// L2 misses in the interval.
    pub l2_misses: u64,
    /// Outstanding MSHR fills at the boundary.
    pub mshr_outstanding: u64,
    /// Requests backed up in the core's outbox at the boundary.
    pub outbox_backlog: u64,
    /// DRAM reads serviced in the interval (all channels).
    pub dram_reads: u64,
    /// DRAM writes serviced in the interval (all channels).
    pub dram_writes: u64,
    /// DRAM row-buffer hits in the interval.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses in the interval.
    pub dram_row_misses: u64,
    /// Bytes moved by the GPU's DRAM channels in the interval.
    pub dram_bytes: u64,
    /// Bytes sent on the GPU's outbound links (to peers + CPU) in the
    /// interval.
    pub link_bytes_out: u64,
    /// Messages in flight on the GPU's outbound links at the boundary.
    pub link_in_flight: u64,
    /// RDC probe hits in the interval (0 for designs without CARVE).
    pub rdc_hits: u64,
    /// RDC probe misses (tag/empty + stale-epoch) in the interval.
    pub rdc_misses: u64,
    /// RDC line insertions in the interval.
    pub rdc_insertions: u64,
    /// RDC invalidation drops in the interval.
    pub rdc_invalidations: u64,
}

impl IntervalRecord {
    /// Instructions per cycle over the interval (0 on an empty interval).
    pub fn ipc(&self) -> f64 {
        let cycles = self.end.saturating_sub(self.start);
        if cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / cycles as f64
        }
    }

    /// L1 hit rate over the interval (0 when no accesses).
    pub fn l1_hit_rate(&self) -> f64 {
        rate(self.l1_hits, self.l1_misses)
    }

    /// L2 hit rate over the interval (0 when no accesses).
    pub fn l2_hit_rate(&self) -> f64 {
        rate(self.l2_hits, self.l2_misses)
    }

    /// DRAM row-buffer hit rate over the interval (0 when no accesses).
    pub fn dram_row_hit_rate(&self) -> f64 {
        rate(self.dram_row_hits, self.dram_row_misses)
    }

    /// RDC hit rate over the interval (0 when no probes).
    pub fn rdc_hit_rate(&self) -> f64 {
        rate(self.rdc_hits, self.rdc_misses)
    }

    /// Outbound link bandwidth over the interval, in bytes per cycle.
    pub fn link_bytes_per_cycle(&self) -> f64 {
        let cycles = self.end.saturating_sub(self.start);
        if cycles == 0 {
            0.0
        } else {
            self.link_bytes_out as f64 / cycles as f64
        }
    }

    /// The record as one CSV line (no trailing newline), columns matching
    /// [`Timeline::CSV_HEADER`].
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.start,
            self.end,
            self.gpu,
            self.instructions,
            self.active_warps,
            self.waiting_mem_warps,
            self.l1_hits,
            self.l1_misses,
            self.l2_hits,
            self.l2_misses,
            self.mshr_outstanding,
            self.outbox_backlog,
            self.dram_reads,
            self.dram_writes,
            self.dram_row_hits,
            self.dram_row_misses,
            self.dram_bytes,
            self.link_bytes_out,
            self.link_in_flight,
            self.rdc_hits,
            self.rdc_misses,
            self.rdc_insertions,
            self.rdc_invalidations,
        )
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// A run's interval samples: one [`IntervalRecord`] per (interval × GPU),
/// in cycle order (GPU-major within each interval).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// The samples, ordered by interval start, then GPU index.
    pub records: Vec<IntervalRecord>,
}

impl Timeline {
    /// CSV header line matching [`IntervalRecord::csv_line`]. The
    /// trace-smoke CI job asserts this exact schema; widening it is fine,
    /// but bump the docs and CI check together.
    pub const CSV_HEADER: &'static str = "start,end,gpu,instructions,active_warps,\
         waiting_mem_warps,l1_hits,l1_misses,l2_hits,l2_misses,mshr_outstanding,\
         outbox_backlog,dram_reads,dram_writes,dram_row_hits,dram_row_misses,\
         dram_bytes,link_bytes_out,link_in_flight,rdc_hits,rdc_misses,\
         rdc_insertions,rdc_invalidations";

    /// Number of columns in the CSV schema.
    pub const CSV_COLUMNS: usize = 23;

    /// Creates an empty timeline with the given sampling interval.
    pub fn new(interval: u64) -> Timeline {
        Timeline {
            interval,
            records: Vec::new(),
        }
    }

    /// Sum of per-interval retired instructions across all records. The
    /// engine guarantees this equals the run's total instruction count.
    pub fn total_instructions(&self) -> u64 {
        self.records.iter().map(|r| r.instructions).sum()
    }

    /// Number of distinct sampled intervals (records ÷ GPUs).
    pub fn num_intervals(&self) -> usize {
        self.records
            .iter()
            .map(|r| (r.start, r.end))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Writes header + records as CSV.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{}", Self::CSV_HEADER)?;
        for r in &self.records {
            writeln!(w, "{}", r.csv_line())?;
        }
        Ok(())
    }

    /// The full CSV document as a string.
    pub fn to_csv_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf).expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("CSV is ASCII")
    }
}

/// Reads the sampling interval from `CARVE_TELEMETRY_INTERVAL`: unset or
/// `0` disables sampling (`None`); `n` samples every `n` cycles. An
/// unparsable value warns on stderr and disables sampling (matching the
/// watchdog's env idiom, except that the safe default here is *off*).
pub fn interval_from_env() -> Option<u64> {
    match std::env::var("CARVE_TELEMETRY_INTERVAL") {
        Err(_) => None,
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!(
                    "warning: CARVE_TELEMETRY_INTERVAL={v:?} is not a cycle count; \
                     telemetry stays disabled"
                );
                None
            }
        },
    }
}

/// Chrome-tracing event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span begin (`"B"`). Must nest properly with [`TracePhase::End`] on
    /// the same track.
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instantaneous event (`"i"`).
    Instant,
}

impl TracePhase {
    /// The single-character Chrome-tracing phase code.
    pub fn code(&self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One structured engine event. `track` maps to the Chrome-tracing `tid`
/// (per-GPU events use the GPU index; system-wide events use
/// [`TraceEvent::SYSTEM_TRACK`]); the cycle count maps to `ts`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (e.g. `"kernel 3"`, `"page migration"`).
    pub name: String,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Track (GPU index, or [`TraceEvent::SYSTEM_TRACK`]).
    pub track: u32,
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// Optional numeric arguments rendered into the Chrome `args` object.
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Track id for events that belong to the whole system rather than
    /// one GPU (coherence broadcasts, watchdog trips, kernel boundaries).
    pub const SYSTEM_TRACK: u32 = u32::MAX;

    /// An instantaneous event with no arguments.
    pub fn instant(name: impl Into<String>, track: u32, cycle: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            phase: TracePhase::Instant,
            track,
            cycle,
            args: Vec::new(),
        }
    }

    /// A span-begin event.
    pub fn begin(name: impl Into<String>, track: u32, cycle: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            phase: TracePhase::Begin,
            track,
            cycle,
            args: Vec::new(),
        }
    }

    /// A span-end event (name must match the open span on the track).
    pub fn end(name: impl Into<String>, track: u32, cycle: u64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            phase: TracePhase::End,
            track,
            cycle,
            args: Vec::new(),
        }
    }

    /// Attaches a numeric argument (builder-style).
    pub fn arg(mut self, key: &'static str, value: u64) -> TraceEvent {
        self.args.push((key, value));
        self
    }
}

/// Receiver for structured engine events. Implementations must be cheap:
/// the engine calls [`TraceSink::enabled`] once per run and skips all
/// event construction when it returns `false`.
pub trait TraceSink {
    /// Whether the sink wants events at all. A `false` here makes tracing
    /// zero-cost: the engine never builds a [`TraceEvent`].
    fn enabled(&self) -> bool;
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// Discards everything; reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers events and renders them as Chrome `chrome://tracing` /
/// Perfetto-compatible JSON (`{"traceEvents": [...]}`); `ts` is the
/// simulated cycle (shown as microseconds by the viewers — at the nominal
/// 1 GHz clock, 1 displayed µs = 1000 cycles).
#[derive(Debug, Clone, Default)]
pub struct JsonTraceSink {
    events: Vec<TraceEvent>,
}

impl JsonTraceSink {
    /// An empty sink.
    pub fn new() -> JsonTraceSink {
        JsonTraceSink::default()
    }

    /// The buffered events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Writes the Chrome-tracing JSON document.
    pub fn write_chrome_json<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(w, "{{\"traceEvents\":[")?;
        for (i, ev) in self.events.iter().enumerate() {
            let tid = if ev.track == TraceEvent::SYSTEM_TRACK {
                // Perfetto sorts tracks by tid; park system-wide events on
                // a small dedicated track below the per-GPU ones.
                0
            } else {
                ev.track as u64 + 1
            };
            write!(
                w,
                "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":0,\"tid\":{}",
                json_string(&ev.name),
                ev.phase.code(),
                ev.cycle,
                tid,
            )?;
            if ev.phase == TracePhase::Instant {
                // Thread-scoped instants render as small arrows on the track.
                write!(w, ",\"s\":\"t\"")?;
            }
            if !ev.args.is_empty() {
                write!(w, ",\"args\":{{")?;
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        write!(w, ",")?;
                    }
                    write!(w, "{}:{}", json_string(k), v)?;
                }
                write!(w, "}}")?;
            }
            write!(w, "}}")?;
            if i + 1 < self.events.len() {
                writeln!(w, ",")?;
            } else {
                writeln!(w)?;
            }
        }
        writeln!(w, "]}}")
    }

    /// The JSON document as a string.
    pub fn to_json_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_chrome_json(&mut buf)
            .expect("write to Vec cannot fail");
        String::from_utf8(buf).expect("trace JSON is UTF-8")
    }
}

impl TraceSink for JsonTraceSink {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(start: u64, end: u64, gpu: u32, instrs: u64) -> IntervalRecord {
        IntervalRecord {
            start,
            end,
            gpu,
            instructions: instrs,
            ..IntervalRecord::default()
        }
    }

    #[test]
    fn csv_header_matches_line_column_count() {
        let header_cols = Timeline::CSV_HEADER.split(',').count();
        assert_eq!(header_cols, Timeline::CSV_COLUMNS);
        let line = record(0, 100, 0, 42).csv_line();
        assert_eq!(line.split(',').count(), Timeline::CSV_COLUMNS);
        // The continuation-escaped header must not leak stray whitespace.
        assert!(!Timeline::CSV_HEADER.contains(' '));
    }

    #[test]
    fn timeline_sums_instructions_and_counts_intervals() {
        let mut t = Timeline::new(100);
        t.records.push(record(0, 100, 0, 10));
        t.records.push(record(0, 100, 1, 20));
        t.records.push(record(100, 200, 0, 30));
        t.records.push(record(100, 200, 1, 40));
        assert_eq!(t.total_instructions(), 100);
        assert_eq!(t.num_intervals(), 2);
        let csv = t.to_csv_string();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("start,end,gpu,"));
    }

    #[test]
    fn interval_rates_handle_empty_intervals() {
        let r = record(50, 50, 0, 0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.l1_hit_rate(), 0.0);
        assert_eq!(r.dram_row_hit_rate(), 0.0);
        assert_eq!(r.link_bytes_per_cycle(), 0.0);
        let mut busy = record(0, 100, 0, 250);
        busy.l1_hits = 3;
        busy.l1_misses = 1;
        busy.link_bytes_out = 800;
        assert_eq!(busy.ipc(), 2.5);
        assert_eq!(busy.l1_hit_rate(), 0.75);
        assert_eq!(busy.link_bytes_per_cycle(), 8.0);
    }

    #[test]
    fn null_sink_is_disabled_and_json_sink_buffers() {
        assert!(!NullTraceSink.enabled());
        let mut sink = JsonTraceSink::new();
        assert!(sink.enabled());
        sink.record(TraceEvent::begin("kernel 0", 1, 400));
        sink.record(TraceEvent::end("kernel 0", 1, 900));
        sink.record(
            TraceEvent::instant("watchdog trip", TraceEvent::SYSTEM_TRACK, 950).arg("budget", 100),
        );
        assert_eq!(sink.events().len(), 3);
        let json = sink.to_json_string();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"budget\":100}"));
        // System-track events land on tid 0; GPU 1 lands on tid 2.
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn env_parsing_is_permissive_but_off_by_default() {
        // Can't touch the real environment in parallel tests; exercise the
        // parse logic indirectly through a round trip of the documented
        // contract on the current (unset) state.
        if std::env::var_os("CARVE_TELEMETRY_INTERVAL").is_none() {
            assert_eq!(interval_from_env(), None);
        }
    }
}
