//! Inter-GPU and CPU-GPU interconnect model.
//!
//! The paper's multi-GPU system connects four GPUs with NVLink-style
//! uni-directional point-to-point links (64 GB/s each direction) and each
//! GPU to the host CPU at 32 GB/s. The NUMA bottleneck is the ~16× gap
//! between these links and local HBM bandwidth.
//!
//! [`Link`] models one direction of one link: messages serialize over a
//! bytes/cycle budget (queueing pushes later messages out in time) and
//! arrive after a propagation latency. [`LinkNetwork`] owns the full
//! all-to-all mesh plus per-GPU CPU links and routes by `(src, dst)` node
//! id, where node [`NodeId::Cpu`] is the host.
//!
//! # Example
//!
//! ```
//! use carve_noc::{Link, msg};
//! use sim_core::Cycle;
//!
//! let mut link = Link::new(8.0, 100);
//! link.send(1, msg::RESP_DATA_BYTES, Cycle(0));
//! let mut got = Vec::new();
//! for c in 0..200u64 {
//!     got.extend(link.tick(Cycle(c)));
//! }
//! assert_eq!(got, vec![1]);
//! ```

#![warn(missing_docs)]

use sim_core::event::{earliest, NextEvent};
use sim_core::Cycle;

/// Message size constants in bytes.
///
/// These follow common NoC accounting: a request/control packet is one
/// 32-byte flit; packets carrying a 128-byte cache line pay the header plus
/// the data.
pub mod msg {
    /// Read request / control header.
    pub const REQ_BYTES: u64 = 32;
    /// Response carrying one 128 B cache line (header + data).
    pub const RESP_DATA_BYTES: u64 = 160;
    /// Write carrying one 128 B cache line (header + data).
    pub const WRITE_DATA_BYTES: u64 = 160;
    /// Write-invalidate probe (GPU-VI hardware coherence).
    pub const INVALIDATE_BYTES: u64 = 32;
}

/// One direction of one point-to-point link.
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: u64,
    next_slot: f64,
    in_flight: Vec<(u64, u64)>, // (token, arrival cycle)
    // EQUIVALENCE: `min_arrival` is a lower bound on the earliest delivery,
    // tightened in `send` (min with the new arrival) and recomputed from
    // the surviving entries whenever `tick_into` drains. A tick skipped
    // because `min_arrival > now` would have delivered nothing under
    // stepping either, and delivery *order* within a tick comes from the
    // in_flight scan order, which skipping does not alter — so token
    // streams are bit-identical under both engines (golden tests pin it).
    /// Earliest in-flight arrival (`u64::MAX` when empty): the per-tick
    /// delivery scan and the event horizon skip the list until then.
    min_arrival: u64,
    bytes_sent: u64,
    messages_sent: u64,
    messages_delivered: u64,
    busy_until: f64,
}

impl Link {
    /// Creates a link with `bytes_per_cycle` bandwidth and `latency` cycles
    /// of propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f64, latency: u64) -> Link {
        assert!(bytes_per_cycle > 0.0, "link bandwidth must be positive");
        Link {
            bytes_per_cycle,
            latency,
            next_slot: 0.0,
            in_flight: Vec::new(),
            min_arrival: u64::MAX,
            bytes_sent: 0,
            messages_sent: 0,
            messages_delivered: 0,
            busy_until: 0.0,
        }
    }

    /// Queues a message of `bytes` onto the wire at `now`; it arrives after
    /// serialization (including queueing behind earlier messages) plus
    /// propagation latency. Links accept unboundedly — end-point queues
    /// (MSHRs, warp slots) bound the traffic in flight.
    pub fn send(&mut self, token: u64, bytes: u64, now: Cycle) {
        let start = (now.0 as f64).max(self.next_slot);
        let ser = bytes as f64 / self.bytes_per_cycle;
        self.next_slot = start + ser;
        self.busy_until = self.next_slot;
        let arrival = (start + ser + self.latency as f64).ceil() as u64;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.in_flight.push((token, arrival));
        self.min_arrival = self.min_arrival.min(arrival);
    }

    /// Returns tokens of messages that have arrived by `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<u64> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Appends tokens of messages that have arrived by `now` to `out`
    /// (allocation-free variant of [`Link::tick`]).
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<u64>) {
        if self.min_arrival > now.0 {
            return;
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].1 <= now.0 {
                out.push(self.in_flight.swap_remove(i).0);
                self.messages_delivered += 1;
            } else {
                min = min.min(self.in_flight[i].1);
                i += 1;
            }
        }
        self.min_arrival = min;
    }

    /// Earliest cycle a new message could start serializing.
    pub fn next_free(&self) -> Cycle {
        Cycle(self.next_slot.ceil() as u64)
    }

    /// Total bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages accepted.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages that have arrived at the far end.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages currently on the wire.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Arrival cycle of the oldest in-flight message, if any.
    pub fn oldest_in_flight_arrival(&self) -> Option<u64> {
        (self.min_arrival != u64::MAX).then_some(self.min_arrival)
    }

    /// Whether messages are still in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Achieved utilization over `elapsed` cycles (0..=1).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed.0 == 0 {
            return 0.0;
        }
        (self.bytes_sent as f64 / self.bytes_per_cycle / elapsed.0 as f64).min(1.0)
    }

    /// Configured bandwidth in bytes/cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }
}

impl NextEvent for Link {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.min_arrival != u64::MAX).then(|| Cycle(self.min_arrival.max(now.0 + 1)))
    }
}

/// A node in the interconnect: a GPU or the host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// GPU `n` (0-based).
    Gpu(usize),
    /// The host CPU (system memory).
    Cpu,
}

/// An arrived message, reported by [`LinkNetwork::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-supplied token.
    pub token: u64,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
}

/// All-to-all GPU mesh plus per-GPU CPU links.
#[derive(Debug)]
pub struct LinkNetwork {
    num_gpus: usize,
    // gpu_links[src * num_gpus + dst], unused when src == dst.
    gpu_links: Vec<Link>,
    to_cpu: Vec<Link>,
    from_cpu: Vec<Link>,
    // Reused per-link drain buffer for `tick_into`.
    drain_scratch: Vec<u64>,
}

impl LinkNetwork {
    /// Builds the mesh: every GPU pair gets a dedicated link in each
    /// direction at `gpu_bpc` bytes/cycle; every GPU gets a CPU link pair at
    /// `cpu_bpc`.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero or bandwidths are not positive.
    pub fn new(
        num_gpus: usize,
        gpu_bpc: f64,
        gpu_latency: u64,
        cpu_bpc: f64,
        cpu_latency: u64,
    ) -> LinkNetwork {
        assert!(num_gpus > 0);
        LinkNetwork {
            num_gpus,
            gpu_links: (0..num_gpus * num_gpus)
                .map(|_| Link::new(gpu_bpc, gpu_latency))
                .collect(),
            to_cpu: (0..num_gpus)
                .map(|_| Link::new(cpu_bpc, cpu_latency))
                .collect(),
            from_cpu: (0..num_gpus)
                .map(|_| Link::new(cpu_bpc, cpu_latency))
                .collect(),
            drain_scratch: Vec::new(),
        }
    }

    fn link_ref(&self, src: NodeId, dst: NodeId) -> &Link {
        match (src, dst) {
            (NodeId::Gpu(s), NodeId::Gpu(d)) => {
                assert!(s != d, "no self-link");
                assert!(s < self.num_gpus && d < self.num_gpus);
                &self.gpu_links[s * self.num_gpus + d]
            }
            (NodeId::Gpu(s), NodeId::Cpu) => &self.to_cpu[s],
            (NodeId::Cpu, NodeId::Gpu(d)) => &self.from_cpu[d],
            // audit:allow(tick-path-panics) documented topology-contract panic; no CPU↔CPU route exists to recover onto
            (NodeId::Cpu, NodeId::Cpu) => panic!("no CPU self-link"),
        }
    }

    /// Whether the `src → dst` link's serialization backlog extends more
    /// than `horizon` cycles past `now`. Senders use this as back-pressure
    /// instead of piling unbounded traffic onto a saturated link.
    pub fn congested(&self, src: NodeId, dst: NodeId, now: Cycle, horizon: u64) -> bool {
        self.link_ref(src, dst).next_free() > Cycle(now.0 + horizon)
    }

    fn link_mut(&mut self, src: NodeId, dst: NodeId) -> &mut Link {
        match (src, dst) {
            (NodeId::Gpu(s), NodeId::Gpu(d)) => {
                assert!(s != d, "no self-link");
                assert!(s < self.num_gpus && d < self.num_gpus);
                &mut self.gpu_links[s * self.num_gpus + d]
            }
            (NodeId::Gpu(s), NodeId::Cpu) => &mut self.to_cpu[s],
            (NodeId::Cpu, NodeId::Gpu(d)) => &mut self.from_cpu[d],
            // audit:allow(tick-path-panics) documented topology-contract panic; no CPU↔CPU route exists to recover onto
            (NodeId::Cpu, NodeId::Cpu) => panic!("no CPU self-link"),
        }
    }

    /// Sends `bytes` from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics on self-links or out-of-range GPU ids.
    pub fn send(&mut self, src: NodeId, dst: NodeId, token: u64, bytes: u64, now: Cycle) {
        self.link_mut(src, dst).send(token, bytes, now);
    }

    /// Advances all links, returning every delivery due by `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Advances all links, appending every delivery due by `now` to `out`
    /// (allocation-free variant of [`LinkNetwork::tick`]; `out` is NOT
    /// cleared). Per-link `min_arrival` caches make a link with nothing
    /// due cost one compare.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        let mut scratch = std::mem::take(&mut self.drain_scratch);
        for s in 0..self.num_gpus {
            for d in 0..self.num_gpus {
                if s == d {
                    continue;
                }
                let link = &mut self.gpu_links[s * self.num_gpus + d];
                if link.min_arrival > now.0 {
                    continue;
                }
                scratch.clear();
                link.tick_into(now, &mut scratch);
                for &token in &scratch {
                    out.push(Delivery {
                        token,
                        src: NodeId::Gpu(s),
                        dst: NodeId::Gpu(d),
                    });
                }
            }
        }
        for g in 0..self.num_gpus {
            if self.to_cpu[g].min_arrival <= now.0 {
                scratch.clear();
                self.to_cpu[g].tick_into(now, &mut scratch);
                for &token in &scratch {
                    out.push(Delivery {
                        token,
                        src: NodeId::Gpu(g),
                        dst: NodeId::Cpu,
                    });
                }
            }
            if self.from_cpu[g].min_arrival <= now.0 {
                scratch.clear();
                self.from_cpu[g].tick_into(now, &mut scratch);
                for &token in &scratch {
                    out.push(Delivery {
                        token,
                        src: NodeId::Cpu,
                        dst: NodeId::Gpu(g),
                    });
                }
            }
        }
        self.drain_scratch = scratch;
    }

    /// Total bytes sent over GPU-GPU links.
    pub fn gpu_bytes_sent(&self) -> u64 {
        self.gpu_links.iter().map(Link::bytes_sent).sum()
    }

    /// Total bytes sent over CPU links (both directions).
    pub fn cpu_bytes_sent(&self) -> u64 {
        self.to_cpu.iter().map(Link::bytes_sent).sum::<u64>()
            + self.from_cpu.iter().map(Link::bytes_sent).sum::<u64>()
    }

    /// Peak utilization across GPU-GPU links over `elapsed` cycles.
    pub fn max_gpu_link_utilization(&self, elapsed: Cycle) -> f64 {
        self.gpu_links
            .iter()
            .map(|l| l.utilization(elapsed))
            .fold(0.0, f64::max)
    }

    /// Total messages accepted across every link, plus total delivered.
    /// Both are monotonic, so their sum serves as a progress signature for
    /// the engine watchdog.
    pub fn message_counts(&self) -> (u64, u64) {
        let mut sent = 0;
        let mut delivered = 0;
        for l in self.all_links() {
            sent += l.messages_sent();
            delivered += l.messages_delivered();
        }
        (sent, delivered)
    }

    fn all_links(&self) -> impl Iterator<Item = &Link> {
        self.gpu_links
            .iter()
            .chain(self.to_cpu.iter())
            .chain(self.from_cpu.iter())
    }

    /// One diagnostic line per link with traffic in flight: route, queue
    /// depth, and the arrival cycle of its oldest message. Empty when the
    /// network is idle.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.snapshot().occupancy_report()
    }

    /// Point-in-time per-link occupancy. Read-only; the single source
    /// behind [`LinkNetwork::occupancy_report`] and the telemetry sampler.
    pub fn snapshot(&self) -> NetSnapshot {
        let route = |i: usize| -> String {
            if i < self.num_gpus * self.num_gpus {
                format!("gpu{}->gpu{}", i / self.num_gpus, i % self.num_gpus)
            } else if i < self.num_gpus * self.num_gpus + self.num_gpus {
                format!("gpu{}->cpu", i - self.num_gpus * self.num_gpus)
            } else {
                format!(
                    "cpu->gpu{}",
                    i - self.num_gpus * self.num_gpus - self.num_gpus
                )
            }
        };
        NetSnapshot {
            links: self
                .all_links()
                .enumerate()
                .map(|(i, l)| LinkSnapshot {
                    route: route(i),
                    in_flight: l.in_flight(),
                    oldest_arrival: l.oldest_in_flight_arrival(),
                    bytes_sent: l.bytes_sent(),
                })
                .collect(),
        }
    }

    /// Cumulative bytes sent on GPU `g`'s outbound links: the links to
    /// every peer GPU plus the link to the CPU. Monotonic; the telemetry
    /// sampler differences it per interval for outbound bandwidth.
    pub fn gpu_outbound_bytes(&self, g: usize) -> u64 {
        assert!(g < self.num_gpus);
        let peers: u64 = (0..self.num_gpus)
            .filter(|&d| d != g)
            .map(|d| self.gpu_links[g * self.num_gpus + d].bytes_sent())
            .sum();
        peers + self.to_cpu[g].bytes_sent()
    }

    /// Messages currently in flight on GPU `g`'s outbound links (peers +
    /// CPU). Point-in-time occupancy, not monotonic.
    pub fn gpu_outbound_in_flight(&self, g: usize) -> usize {
        assert!(g < self.num_gpus);
        let peers: usize = (0..self.num_gpus)
            .filter(|&d| d != g)
            .map(|d| self.gpu_links[g * self.num_gpus + d].in_flight())
            .sum();
        peers + self.to_cpu[g].in_flight()
    }

    /// Whether every link is quiescent.
    pub fn is_idle(&self) -> bool {
        self.gpu_links.iter().all(Link::is_idle)
            && self.to_cpu.iter().all(Link::is_idle)
            && self.from_cpu.iter().all(Link::is_idle)
    }

    /// Number of GPU nodes.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }
}

/// Point-in-time occupancy of one link (see [`NetSnapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Human-readable route, e.g. `"gpu0->gpu1"`, `"gpu2->cpu"`,
    /// `"cpu->gpu3"`.
    pub route: String,
    /// Messages in flight on the link.
    pub in_flight: usize,
    /// Arrival cycle of the oldest in-flight message, if any.
    pub oldest_arrival: Option<u64>,
    /// Cumulative bytes accepted by the link.
    pub bytes_sent: u64,
}

/// Point-in-time occupancy snapshot of the whole interconnect, links in
/// [`LinkNetwork`] iteration order (GPU-GPU row-major, then GPU→CPU, then
/// CPU→GPU).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Per-link occupancy.
    pub links: Vec<LinkSnapshot>,
}

impl NetSnapshot {
    /// Human-readable lines naming every link with traffic in flight
    /// (empty when the network is idle). Used verbatim in watchdog stall
    /// reports.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.links
            .iter()
            .filter(|l| l.in_flight > 0)
            .map(|l| {
                format!(
                    "link {}: in_flight={} oldest_arrival={}",
                    l.route,
                    l.in_flight,
                    l.oldest_arrival.unwrap_or(0),
                )
            })
            .collect()
    }
}

impl NextEvent for LinkNetwork {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for link in self
            .gpu_links
            .iter()
            .chain(self.to_cpu.iter())
            .chain(self.from_cpu.iter())
        {
            horizon = earliest(horizon, link.next_event(now));
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_arrives_after_serialization_plus_latency() {
        let mut l = Link::new(8.0, 100);
        l.send(42, 160, Cycle(0));
        // 160/8 = 20 cycles serialization + 100 latency = arrival 120.
        assert!(l.tick(Cycle(119)).is_empty());
        assert_eq!(l.tick(Cycle(120)), vec![42]);
        assert!(l.is_idle());
    }

    #[test]
    fn back_to_back_messages_queue_on_bandwidth() {
        let mut l = Link::new(8.0, 0);
        l.send(1, 160, Cycle(0));
        l.send(2, 160, Cycle(0));
        // First done serializing at 20, second at 40.
        let mut arrivals = Vec::new();
        for c in 0..=40u64 {
            for t in l.tick(Cycle(c)) {
                arrivals.push((t, c));
            }
        }
        assert_eq!(arrivals, vec![(1, 20), (2, 40)]);
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut l = Link::new(2.0, 0);
        for i in 0..100 {
            l.send(i, 128, Cycle(0));
        }
        assert!((l.utilization(Cycle(100)) - 1.0).abs() < 1e-9);
        assert!(l.utilization(Cycle::ZERO) == 0.0);
    }

    #[test]
    fn network_routes_between_gpus_and_cpu() {
        let mut net = LinkNetwork::new(4, 8.0, 10, 4.0, 20);
        net.send(NodeId::Gpu(0), NodeId::Gpu(3), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(2), NodeId::Cpu, 2, 32, Cycle(0));
        net.send(NodeId::Cpu, NodeId::Gpu(1), 3, 32, Cycle(0));
        let mut seen = Vec::new();
        for c in 0..100u64 {
            seen.extend(net.tick(Cycle(c)));
        }
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&Delivery {
            token: 1,
            src: NodeId::Gpu(0),
            dst: NodeId::Gpu(3)
        }));
        assert!(seen.contains(&Delivery {
            token: 2,
            src: NodeId::Gpu(2),
            dst: NodeId::Cpu
        }));
        assert!(net.is_idle());
    }

    #[test]
    fn distinct_links_do_not_interfere() {
        let mut net = LinkNetwork::new(2, 1.0, 0, 1.0, 0);
        // Saturate 0->1; 1->0 stays fast.
        for i in 0..10 {
            net.send(NodeId::Gpu(0), NodeId::Gpu(1), i, 128, Cycle(0));
        }
        net.send(NodeId::Gpu(1), NodeId::Gpu(0), 99, 32, Cycle(0));
        let deliveries: Vec<_> = (0..=32u64).flat_map(|c| net.tick(Cycle(c))).collect();
        assert!(deliveries.iter().any(|d| d.token == 99));
    }

    #[test]
    #[should_panic(expected = "no self-link")]
    fn self_link_panics() {
        let mut net = LinkNetwork::new(2, 1.0, 0, 1.0, 0);
        net.send(NodeId::Gpu(0), NodeId::Gpu(0), 0, 32, Cycle(0));
    }

    #[test]
    fn next_event_points_at_earliest_arrival() {
        let mut l = Link::new(8.0, 100);
        assert_eq!(l.next_event(Cycle(0)), None);
        l.send(1, 160, Cycle(0)); // arrives at 120
        l.send(2, 160, Cycle(0)); // arrives at 140
        assert_eq!(l.next_event(Cycle(0)), Some(Cycle(120)));
        assert!(l.tick(Cycle(119)).is_empty());
        assert_eq!(l.tick(Cycle(120)), vec![1]);
        assert_eq!(l.next_event(Cycle(120)), Some(Cycle(140)));
        let mut net = LinkNetwork::new(2, 8.0, 10, 4.0, 20);
        assert_eq!(net.next_event(Cycle(0)), None);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 7, 32, Cycle(0));
        // 32/8 = 4 serialization + 10 latency.
        assert_eq!(net.next_event(Cycle(0)), Some(Cycle(14)));
    }

    #[test]
    fn message_counts_and_occupancy_report_track_in_flight_traffic() {
        let mut net = LinkNetwork::new(2, 8.0, 100, 8.0, 100);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(1), NodeId::Cpu, 2, 32, Cycle(0));
        assert_eq!(net.message_counts(), (2, 0));
        let report = net.occupancy_report();
        assert_eq!(report.len(), 2);
        assert!(report.iter().any(|l| l.contains("gpu0->gpu1")));
        assert!(report.iter().any(|l| l.contains("gpu1->cpu")));
        for c in 0..=200u64 {
            net.tick(Cycle(c));
        }
        assert_eq!(net.message_counts(), (2, 2));
        assert!(net.occupancy_report().is_empty());
    }

    #[test]
    fn byte_accounting_split_by_kind() {
        let mut net = LinkNetwork::new(2, 8.0, 0, 8.0, 0);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 0, msg::REQ_BYTES, Cycle(0));
        net.send(
            NodeId::Gpu(0),
            NodeId::Cpu,
            1,
            msg::WRITE_DATA_BYTES,
            Cycle(0),
        );
        assert_eq!(net.gpu_bytes_sent(), 32);
        assert_eq!(net.cpu_bytes_sent(), 160);
    }
}
