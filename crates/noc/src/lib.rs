//! Inter-GPU and CPU-GPU interconnect model.
//!
//! The paper's multi-GPU system connects four GPUs with NVLink-style
//! uni-directional point-to-point links (64 GB/s each direction) and each
//! GPU to the host CPU at 32 GB/s. The NUMA bottleneck is the ~16× gap
//! between these links and local HBM bandwidth.
//!
//! [`Link`] models one direction of one link: messages serialize over a
//! bytes/cycle budget (queueing pushes later messages out in time) and
//! arrive after a propagation latency.
//!
//! [`Topology`] generalizes the original pairwise link table into a
//! routed graph: nodes are GPUs, the host CPU, and (optionally) switches;
//! edges are directional [`Link`]s; routes are static shortest-hop paths
//! computed once at build time with deterministic lowest-edge-index
//! tie-breaks. Built-in generators cover the paper's
//! [`TopologySpec::AllToAll`] mesh (the default — bit-identical to the
//! historic pairwise table), a central crossbar
//! ([`TopologySpec::Switch`]), a bidirectional [`TopologySpec::Ring`],
//! and DGX-style [`TopologySpec::Hierarchical`] pods.
//!
//! [`LinkNetwork`] is the runtime network over a topology: it routes by
//! `(src, dst)` node id, forwards multi-hop traffic at switches (per-hop
//! serialization + propagation; switch queueing is the outgoing link's
//! serialization backlog), and keeps end-to-end and per-hop conservation
//! counters for the protocol sanitizer.
//!
//! # Example
//!
//! ```
//! use carve_noc::{Link, msg};
//! use sim_core::Cycle;
//!
//! let mut link = Link::new(8.0, 100).expect("positive bandwidth");
//! link.send(1, msg::RESP_DATA_BYTES, Cycle(0));
//! let mut got = Vec::new();
//! for c in 0..200u64 {
//!     got.extend(link.tick(Cycle(c)));
//! }
//! assert_eq!(got, vec![1]);
//! ```

#![warn(missing_docs)]

use sim_core::event::{earliest, NextEvent};
use sim_core::fast::Slab;
use sim_core::{Cycle, LinkOccupancy, SimError, TopologySpec};

/// Message size constants in bytes.
///
/// These follow common NoC accounting: a request/control packet is one
/// 32-byte flit; packets carrying a 128-byte cache line pay the header plus
/// the data.
pub mod msg {
    /// Read request / control header.
    pub const REQ_BYTES: u64 = 32;
    /// Response carrying one 128 B cache line (header + data).
    pub const RESP_DATA_BYTES: u64 = 160;
    /// Write carrying one 128 B cache line (header + data).
    pub const WRITE_DATA_BYTES: u64 = 160;
    /// Write-invalidate probe (GPU-VI hardware coherence).
    pub const INVALIDATE_BYTES: u64 = 32;
}

/// Maximum GPU count a topology may carry. Sharer bitmasks (GPU-VI, the
/// coherence directory, the sanitizer's shadow state) are 64 bits wide.
pub const MAX_GPUS: usize = 64;

/// Bandwidth multiplier applied to inter-pod switch-to-switch links in
/// [`TopologySpec::Hierarchical`] topologies (DGX-style pods share a
/// slower backplane than the in-pod mesh).
pub const INTER_POD_BW_FACTOR: f64 = 0.5;

/// One direction of one point-to-point link.
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: u64,
    next_slot: f64,
    in_flight: Vec<(u64, u64)>, // (token, arrival cycle)
    // EQUIVALENCE: `min_arrival` is a lower bound on the earliest delivery,
    // tightened in `send` (min with the new arrival) and recomputed from
    // the surviving entries whenever `tick_into` drains. A tick skipped
    // because `min_arrival > now` would have delivered nothing under
    // stepping either, and delivery *order* within a tick comes from the
    // in_flight scan order, which skipping does not alter — so token
    // streams are bit-identical under both engines (golden tests pin it).
    /// Earliest in-flight arrival (`u64::MAX` when empty): the per-tick
    /// delivery scan and the event horizon skip the list until then.
    min_arrival: u64,
    bytes_sent: u64,
    messages_sent: u64,
    messages_delivered: u64,
    busy_until: f64,
    /// Bandwidth the link was built with; `set_bytes_per_cycle` only moves
    /// the effective rate, so serialization beyond `bytes / nominal` is
    /// attributable to fault degradation.
    nominal_bytes_per_cycle: f64,
    /// Occupancy accounting for the cycle-accounting profiler (always-on
    /// plain additions in `send`; never feeds journaled stats).
    ser_cycles: f64,
    queue_cycles: f64,
    degraded_cycles: f64,
}

impl Link {
    /// Creates a link with `bytes_per_cycle` bandwidth and `latency` cycles
    /// of propagation delay.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] if `bytes_per_cycle` is not a
    /// positive finite number — a zero-bandwidth link can never deliver.
    pub fn new(bytes_per_cycle: f64, latency: u64) -> Result<Link, SimError> {
        if !(bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite()) {
            return Err(SimError::config(format!(
                "link bandwidth must be positive and finite \
                 (bytes_per_cycle={bytes_per_cycle}); raise the link's bytes/cycle"
            )));
        }
        Ok(Link {
            bytes_per_cycle,
            latency,
            next_slot: 0.0,
            in_flight: Vec::new(),
            min_arrival: u64::MAX,
            bytes_sent: 0,
            messages_sent: 0,
            messages_delivered: 0,
            busy_until: 0.0,
            nominal_bytes_per_cycle: bytes_per_cycle,
            ser_cycles: 0.0,
            queue_cycles: 0.0,
            degraded_cycles: 0.0,
        })
    }

    /// Queues a message of `bytes` onto the wire at `now`; it arrives after
    /// serialization (including queueing behind earlier messages) plus
    /// propagation latency. Links accept unboundedly — end-point queues
    /// (MSHRs, warp slots) bound the traffic in flight. Because
    /// serialization of a non-empty message is strictly positive, the
    /// arrival cycle is always strictly after `now`: forwarded hops never
    /// cascade within one tick and event horizons stay exact.
    pub fn send(&mut self, token: u64, bytes: u64, now: Cycle) {
        let start = (now.0 as f64).max(self.next_slot);
        let ser = bytes as f64 / self.bytes_per_cycle;
        let nominal_ser = bytes as f64 / self.nominal_bytes_per_cycle;
        self.queue_cycles += start - now.0 as f64;
        self.ser_cycles += nominal_ser;
        self.degraded_cycles += (ser - nominal_ser).max(0.0);
        self.next_slot = start + ser;
        self.busy_until = self.next_slot;
        let arrival = (start + ser + self.latency as f64).ceil() as u64;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        self.in_flight.push((token, arrival));
        self.min_arrival = self.min_arrival.min(arrival);
    }

    /// Returns tokens of messages that have arrived by `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<u64> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Appends tokens of messages that have arrived by `now` to `out`
    /// (allocation-free variant of [`Link::tick`]).
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<u64>) {
        if self.min_arrival > now.0 {
            return;
        }
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].1 <= now.0 {
                out.push(self.in_flight.swap_remove(i).0);
                self.messages_delivered += 1;
            } else {
                min = min.min(self.in_flight[i].1);
                i += 1;
            }
        }
        self.min_arrival = min;
    }

    /// Earliest cycle a new message could start serializing.
    pub fn next_free(&self) -> Cycle {
        Cycle(self.next_slot.ceil() as u64)
    }

    /// Total bytes accepted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages accepted.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Total messages that have arrived at the far end.
    pub fn messages_delivered(&self) -> u64 {
        self.messages_delivered
    }

    /// Messages currently on the wire.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Arrival cycle of the oldest in-flight message, if any.
    pub fn oldest_in_flight_arrival(&self) -> Option<u64> {
        (self.min_arrival != u64::MAX).then_some(self.min_arrival)
    }

    /// Whether messages are still in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Achieved utilization over `elapsed` cycles (0..=1).
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed.0 == 0 {
            return 0.0;
        }
        (self.bytes_sent as f64 / self.bytes_per_cycle / elapsed.0 as f64).min(1.0)
    }

    /// Configured bandwidth in bytes/cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Occupancy breakdown for the profiler: `(serialization, queueing,
    /// fault-degraded)` cycles accumulated over all sends. Serialization
    /// is at nominal bandwidth; the degraded component is the extra wire
    /// time caused by bandwidth-degradation faults.
    pub fn occupancy(&self) -> (f64, f64, f64) {
        (self.ser_cycles, self.queue_cycles, self.degraded_cycles)
    }

    /// Rewrites the effective bandwidth (fault injection: degradation
    /// windows). Only affects serialization of *future* sends; messages
    /// already on the wire keep their computed arrival cycles, exactly
    /// like a real link renegotiating speed.
    pub(crate) fn set_bytes_per_cycle(&mut self, bytes_per_cycle: f64) {
        debug_assert!(bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite());
        self.bytes_per_cycle = bytes_per_cycle;
    }

    /// Rewrites every in-flight token through `f`, preserving arrival
    /// cycles. Used when a link outage flips a single-hop graph to
    /// routed mode mid-run: raw endpoint tokens already on the wire are
    /// migrated into the flow table so one code path handles arrivals.
    pub(crate) fn retag_in_flight(&mut self, mut f: impl FnMut(u64) -> u64) {
        for entry in &mut self.in_flight {
            entry.0 = f(entry.0);
        }
    }
}

impl NextEvent for Link {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (self.min_arrival != u64::MAX).then(|| Cycle(self.min_arrival.max(now.0 + 1)))
    }
}

/// A node in the interconnect: a GPU or the host CPU.
///
/// Switches are internal to a [`Topology`] — traffic originates and
/// terminates only at GPUs and the CPU, so deliveries never name a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// GPU `n` (0-based).
    Gpu(usize),
    /// The host CPU (system memory).
    Cpu,
}

/// An arrived message, reported by [`LinkNetwork::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-supplied token.
    pub token: u64,
    /// Sender.
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
}

/// One directional edge of a [`Topology`]: a [`Link`] between two node
/// indices (see [`Topology`] for the index scheme).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeSpec {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Link bandwidth in bytes/cycle.
    pub bytes_per_cycle: f64,
    /// Propagation latency in cycles.
    pub latency: u64,
}

/// Sentinel in the next-hop table for "no route".
const NO_ROUTE: u32 = u32::MAX;

/// A static interconnect graph with precomputed deterministic routes.
///
/// Node indices: GPUs occupy `0..num_gpus`, the CPU is `num_gpus`, and
/// switches are `num_gpus + 1 ..`. Only GPUs and the CPU are endpoints;
/// the CPU never forwards transit traffic (it is a leaf), while GPUs may
/// forward (the ring topology routes through them) and switches always
/// do.
///
/// Routing is shortest-hop, computed per destination by a breadth-first
/// search at build time. Ties are broken toward the lowest edge index, so
/// routes depend only on the (deterministic) edge creation order — the
/// same config always yields the same paths, which the bit-identity
/// golden tests rely on.
///
/// ```
/// use carve_noc::Topology;
/// use sim_core::TopologySpec;
///
/// let topo = Topology::build(TopologySpec::Switch, 4, 8.0, 100, 4.0, 200)
///     .expect("valid spec");
/// assert_eq!(
///     topo.route_labels(carve_noc::NodeId::Gpu(0), carve_noc::NodeId::Gpu(3)),
///     vec!["gpu0", "sw0", "gpu3"],
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    label: String,
    num_gpus: usize,
    num_switches: usize,
    edges: Vec<EdgeSpec>,
    // next_hop[node * endpoints + dst_endpoint] = outgoing edge index.
    next_hop: Vec<u32>,
    single_hop: bool,
}

impl Topology {
    /// Builds one of the generated topologies over `num_gpus` GPUs.
    ///
    /// GPU-GPU class links get `gpu_bpc` bytes/cycle and `gpu_latency`
    /// cycles per hop; CPU links get `cpu_bpc` / `cpu_latency`.
    /// Hierarchical inter-pod links run at `gpu_bpc *`
    /// [`INTER_POD_BW_FACTOR`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] (with an actionable message)
    /// when the spec cannot describe a routable machine: zero GPUs, more
    /// than [`MAX_GPUS`], non-positive bandwidth, or a hierarchical
    /// `pod_size` that does not evenly divide `num_gpus`.
    pub fn build(
        spec: TopologySpec,
        num_gpus: usize,
        gpu_bpc: f64,
        gpu_latency: u64,
        cpu_bpc: f64,
        cpu_latency: u64,
    ) -> Result<Topology, SimError> {
        if num_gpus == 0 {
            return Err(SimError::config(
                "topology has num_gpus=0; a system needs at least one GPU".to_string(),
            ));
        }
        if num_gpus > MAX_GPUS {
            return Err(SimError::config(format!(
                "topology has num_gpus={num_gpus}, but coherence sharer bitmasks support at \
                 most {MAX_GPUS} nodes; reduce num_gpus"
            )));
        }
        let cpu = num_gpus;
        let mut edges = Vec::new();
        let mut num_switches = 0usize;
        let push_cpu_links = |edges: &mut Vec<EdgeSpec>| {
            for g in 0..num_gpus {
                edges.push(EdgeSpec {
                    from: g,
                    to: cpu,
                    bytes_per_cycle: cpu_bpc,
                    latency: cpu_latency,
                });
                edges.push(EdgeSpec {
                    from: cpu,
                    to: g,
                    bytes_per_cycle: cpu_bpc,
                    latency: cpu_latency,
                });
            }
        };
        match spec {
            TopologySpec::AllToAll => {
                // Edge order mirrors the historic pairwise table's tick
                // order exactly (GPU pairs row-major, then per-GPU
                // to-CPU / from-CPU interleaved): same-tick delivery
                // order — and therefore golden journals — are preserved.
                for s in 0..num_gpus {
                    for d in 0..num_gpus {
                        if s != d {
                            edges.push(EdgeSpec {
                                from: s,
                                to: d,
                                bytes_per_cycle: gpu_bpc,
                                latency: gpu_latency,
                            });
                        }
                    }
                }
                push_cpu_links(&mut edges);
            }
            TopologySpec::Switch => {
                num_switches = 1;
                let sw = cpu + 1;
                for g in 0..num_gpus {
                    edges.push(EdgeSpec {
                        from: g,
                        to: sw,
                        bytes_per_cycle: gpu_bpc,
                        latency: gpu_latency,
                    });
                    edges.push(EdgeSpec {
                        from: sw,
                        to: g,
                        bytes_per_cycle: gpu_bpc,
                        latency: gpu_latency,
                    });
                }
                // The CPU hangs off the same crossbar at CPU-link speed.
                edges.push(EdgeSpec {
                    from: cpu,
                    to: sw,
                    bytes_per_cycle: cpu_bpc,
                    latency: cpu_latency,
                });
                edges.push(EdgeSpec {
                    from: sw,
                    to: cpu,
                    bytes_per_cycle: cpu_bpc,
                    latency: cpu_latency,
                });
            }
            TopologySpec::Ring => {
                // Clockwise edges first so equal-distance routes prefer
                // the clockwise direction (lowest edge index wins).
                if num_gpus >= 2 {
                    for g in 0..num_gpus {
                        edges.push(EdgeSpec {
                            from: g,
                            to: (g + 1) % num_gpus,
                            bytes_per_cycle: gpu_bpc,
                            latency: gpu_latency,
                        });
                    }
                }
                if num_gpus > 2 {
                    for g in 0..num_gpus {
                        edges.push(EdgeSpec {
                            from: g,
                            to: (g + num_gpus - 1) % num_gpus,
                            bytes_per_cycle: gpu_bpc,
                            latency: gpu_latency,
                        });
                    }
                }
                push_cpu_links(&mut edges);
            }
            TopologySpec::Hierarchical { pod_size } => {
                if pod_size == 0 || !num_gpus.is_multiple_of(pod_size) {
                    return Err(SimError::config(format!(
                        "hierarchical pod_size {pod_size} does not evenly divide \
                         num_gpus {num_gpus}; pick a pod size that tiles the GPUs \
                         (e.g. {})",
                        if num_gpus >= 4 { 4 } else { 1 }
                    )));
                }
                let pods = num_gpus / pod_size;
                num_switches = pods;
                let sw = |p: usize| cpu + 1 + p;
                // Intra-pod all-to-all mesh (row-major, like AllToAll).
                for s in 0..num_gpus {
                    for d in 0..num_gpus {
                        if s != d && s / pod_size == d / pod_size {
                            edges.push(EdgeSpec {
                                from: s,
                                to: d,
                                bytes_per_cycle: gpu_bpc,
                                latency: gpu_latency,
                            });
                        }
                    }
                }
                // Pod uplinks to the pod switch.
                for g in 0..num_gpus {
                    edges.push(EdgeSpec {
                        from: g,
                        to: sw(g / pod_size),
                        bytes_per_cycle: gpu_bpc,
                        latency: gpu_latency,
                    });
                    edges.push(EdgeSpec {
                        from: sw(g / pod_size),
                        to: g,
                        bytes_per_cycle: gpu_bpc,
                        latency: gpu_latency,
                    });
                }
                // Slower pairwise inter-pod backplane between switches.
                for p in 0..pods {
                    for q in 0..pods {
                        if p != q {
                            edges.push(EdgeSpec {
                                from: sw(p),
                                to: sw(q),
                                bytes_per_cycle: gpu_bpc * INTER_POD_BW_FACTOR,
                                latency: gpu_latency,
                            });
                        }
                    }
                }
                push_cpu_links(&mut edges);
            }
        }
        Topology::finalize(spec.label(), num_gpus, num_switches, edges)
    }

    /// Builds a topology from an explicit edge list (`num_switches`
    /// switch nodes after the CPU). Mostly useful for tests and custom
    /// experiments; the generated specs cover the paper's machines.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] on out-of-range node indices,
    /// self-edges, non-positive bandwidth, or a graph that leaves any
    /// endpoint pair unroutable.
    pub fn custom(
        num_gpus: usize,
        num_switches: usize,
        edges: Vec<EdgeSpec>,
    ) -> Result<Topology, SimError> {
        if num_gpus == 0 || num_gpus > MAX_GPUS {
            return Err(SimError::config(format!(
                "custom topology has num_gpus={num_gpus}; need 1..={MAX_GPUS}"
            )));
        }
        Topology::finalize("custom".to_string(), num_gpus, num_switches, edges)
    }

    /// Validates edges, computes the deterministic shortest-hop route
    /// table, and checks endpoint-pair connectivity.
    fn finalize(
        label: String,
        num_gpus: usize,
        num_switches: usize,
        edges: Vec<EdgeSpec>,
    ) -> Result<Topology, SimError> {
        let nodes = num_gpus + 1 + num_switches;
        let node_name = |i: usize| node_label_of(num_gpus, i);
        for e in &edges {
            if e.from >= nodes || e.to >= nodes {
                return Err(SimError::config(format!(
                    "topology '{label}' edge {}→{} names a node outside the \
                     {nodes}-node graph ({num_gpus} GPUs + CPU + {num_switches} switches)",
                    e.from, e.to
                )));
            }
            if e.from == e.to {
                return Err(SimError::config(format!(
                    "topology '{label}' has a self-edge at {}; links connect \
                     distinct nodes",
                    node_name(e.from)
                )));
            }
            if !(e.bytes_per_cycle > 0.0 && e.bytes_per_cycle.is_finite()) {
                return Err(SimError::config(format!(
                    "topology '{label}' edge {}→{} has bandwidth {}; link bandwidth \
                     must be positive and finite",
                    node_name(e.from),
                    node_name(e.to),
                    e.bytes_per_cycle
                )));
            }
        }
        let (next_hop, unroutable) = route_table(num_gpus, nodes, &edges, None);
        // Every endpoint pair (except CPU→CPU) must be routable.
        if let Some((a, b)) = unroutable {
            return Err(SimError::config(format!(
                "topology '{label}' has no route from {} to {}; every GPU must \
                 reach every other GPU and the CPU — add edges until the \
                 graph is connected",
                node_name(a),
                node_name(b)
            )));
        }
        let mut topo = Topology {
            label,
            num_gpus,
            num_switches,
            edges,
            next_hop,
            single_hop: false,
        };
        topo.recompute_single_hop();
        Ok(topo)
    }

    /// Recomputes the single-hop fast-path flag from the current route
    /// table (at build time and after a fault reroute).
    fn recompute_single_hop(&mut self) {
        let endpoints = self.num_gpus + 1;
        let cpu = self.num_gpus;
        self.single_hop = (0..endpoints).all(|a| {
            (0..endpoints).all(|b| a == b || (a == cpu && b == cpu) || self.hops(a, b) == 1)
        });
    }

    fn hops(&self, mut at: usize, dst: usize) -> usize {
        let endpoints = self.num_gpus + 1;
        let mut n = 0;
        while at != dst {
            let e = self.next_hop[at * endpoints + dst];
            at = self.edges[e as usize].to;
            n += 1;
        }
        n
    }

    /// Number of GPU nodes.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Number of switch nodes.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Total nodes (GPUs + CPU + switches).
    pub fn num_nodes(&self) -> usize {
        self.num_gpus + 1 + self.num_switches
    }

    /// The edge list, in deterministic creation order (also the network's
    /// tick order).
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }

    /// Whether every endpoint pair is one hop apart (true for
    /// [`TopologySpec::AllToAll`]); the network then skips the routed
    /// flow table entirely.
    pub fn is_single_hop(&self) -> bool {
        self.single_hop
    }

    /// The spec label this graph was generated from (`"custom"` for
    /// [`Topology::custom`]).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Human-readable node name: `"gpu3"`, `"cpu"`, `"sw0"`.
    pub fn node_label(&self, node: usize) -> String {
        node_label_of(self.num_gpus, node)
    }

    /// Node index of an endpoint.
    fn endpoint_index(&self, n: NodeId) -> usize {
        match n {
            NodeId::Gpu(g) => {
                assert!(g < self.num_gpus, "gpu id out of range");
                g
            }
            NodeId::Cpu => self.num_gpus,
        }
    }

    /// Number of link hops between two endpoints.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.hops(self.endpoint_index(src), self.endpoint_index(dst))
    }

    /// The node labels along the route from `src` to `dst`, inclusive
    /// (diagnostics and tests).
    pub fn route_labels(&self, src: NodeId, dst: NodeId) -> Vec<String> {
        let endpoints = self.num_gpus + 1;
        let mut at = self.endpoint_index(src);
        let dst = self.endpoint_index(dst);
        let mut out = vec![self.node_label(at)];
        while at != dst {
            let e = self.next_hop[at * endpoints + dst];
            at = self.edges[e as usize].to;
            out.push(self.node_label(at));
        }
        out
    }

    #[inline]
    fn next_hop_edge(&self, at: usize, dst_endpoint: usize) -> u32 {
        self.next_hop[at * (self.num_gpus + 1) + dst_endpoint]
    }
}

/// Computes the deterministic shortest-hop next-hop table over the live
/// subgraph (edges whose `dead` flag is unset; `None` = all alive), plus
/// the first endpoint pair left unroutable, if any. Shared by
/// [`Topology::finalize`] (build-time validation) and
/// [`LinkNetwork::fail_link`] (on-the-fly reroute around an injected
/// outage). Tie-breaks stay lowest-edge-index, so fault-free tables are
/// identical to the historic build-time computation.
fn route_table(
    num_gpus: usize,
    nodes: usize,
    edges: &[EdgeSpec],
    dead: Option<&[bool]>,
) -> (Vec<u32>, Option<(usize, usize)>) {
    let endpoints = num_gpus + 1;
    let cpu = num_gpus;
    let alive = |i: usize| dead.is_none_or(|d| !d[i]);
    // Reverse adjacency: incoming edge indices per node, in edge
    // order (the tie-break order).
    let mut incoming: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    for (i, e) in edges.iter().enumerate() {
        if alive(i) {
            incoming[e.to].push(i as u32);
            outgoing[e.from].push(i as u32);
        }
    }
    let mut next_hop = vec![NO_ROUTE; nodes * endpoints];
    let mut dist = vec![u32::MAX; nodes];
    let mut queue: Vec<usize> = Vec::with_capacity(nodes);
    for dst in 0..endpoints {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[dst] = 0;
        queue.clear();
        queue.push(dst);
        let mut head = 0;
        while head < queue.len() {
            let m = queue[head];
            head += 1;
            // The CPU is a leaf endpoint: it never forwards transit
            // traffic, so no route may pass *through* it.
            if m == cpu && dst != cpu {
                continue;
            }
            for &ei in &incoming[m] {
                let u = edges[ei as usize].from;
                if dist[u] == u32::MAX {
                    dist[u] = dist[m] + 1;
                    queue.push(u);
                }
            }
        }
        for u in 0..nodes {
            if u == dst || dist[u] == u32::MAX {
                continue;
            }
            for &ei in &outgoing[u] {
                let to = edges[ei as usize].to;
                // Never step onto the CPU unless it is the target.
                if to == cpu && dst != cpu {
                    continue;
                }
                if dist[to] == dist[u] - 1 {
                    next_hop[u * endpoints + dst] = ei;
                    break;
                }
            }
        }
    }
    let mut unroutable = None;
    'pairs: for a in 0..endpoints {
        for b in 0..endpoints {
            if a == b || (a == cpu && b == cpu) {
                continue;
            }
            if next_hop[a * endpoints + b] == NO_ROUTE {
                unroutable = Some((a, b));
                break 'pairs;
            }
        }
    }
    (next_hop, unroutable)
}

fn node_label_of(num_gpus: usize, node: usize) -> String {
    if node < num_gpus {
        format!("gpu{node}")
    } else if node == num_gpus {
        "cpu".to_string()
    } else {
        format!("sw{}", node - num_gpus - 1)
    }
}

/// In-flight bookkeeping for one multi-hop message: original endpoints
/// and size, looked up at every hop by the network-internal flow token.
#[derive(Debug, Clone, Copy)]
struct Flow {
    token: u64,
    src: u32,
    dst: u32,
    bytes: u64,
}

/// The runtime interconnect over a [`Topology`]: one [`Link`] per edge,
/// static routing, and per-hop forwarding at switches.
///
/// For single-hop graphs (the default all-to-all mesh) every send lands
/// directly on its one link with the caller's token — zero routing
/// overhead, bit-identical to the historic pairwise table. Multi-hop
/// graphs carry a network-internal flow token per message; arrivals at a
/// non-destination node are re-sent on the next hop's link at the arrival
/// cycle, so switch queueing is exactly the outgoing link's serialization
/// backlog.
#[derive(Debug)]
pub struct LinkNetwork {
    topo: Topology,
    links: Vec<Link>,
    flows: Slab<Flow>,
    // Per-node transit counters: (received-in-transit, forwarded).
    // Endpoint deliveries are not transit; in conservative operation the
    // two columns are equal whenever the network is drained.
    transit: Vec<(u64, u64)>,
    injected: u64,
    delivered: u64,
    // Reused per-link drain buffer for `tick_into`.
    drain_scratch: Vec<u64>,
    // --- fault-injection state (all zero in fault-free runs; the hot
    // path pays one compare per delivery when quiescent) ---
    // Per-edge flags: killed by an injected outage / currently throttled.
    dead: Vec<bool>,
    degraded: Vec<bool>,
    // Armed lossy injections, consumed at the next matching event.
    pending_drops: u32,
    pending_fwd_drops: u32,
    pending_dups: u32,
    // Consumed-injection counters for RecoverySnapshot.
    dropped: u64,
    duplicated: u64,
    // Arrived wire tokens with no flow entry: impossible in conservative
    // operation, counted instead of panicking so a desync degrades
    // gracefully (the conservation sanitizer then reports it).
    flow_desync: u64,
}

impl LinkNetwork {
    /// Builds the paper's all-to-all mesh: every GPU pair gets a dedicated
    /// link in each direction at `gpu_bpc` bytes/cycle; every GPU gets a
    /// CPU link pair at `cpu_bpc`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] if `num_gpus` is zero or above
    /// [`MAX_GPUS`], or a bandwidth is not positive.
    pub fn new(
        num_gpus: usize,
        gpu_bpc: f64,
        gpu_latency: u64,
        cpu_bpc: f64,
        cpu_latency: u64,
    ) -> Result<LinkNetwork, SimError> {
        LinkNetwork::from_topology(Topology::build(
            TopologySpec::AllToAll,
            num_gpus,
            gpu_bpc,
            gpu_latency,
            cpu_bpc,
            cpu_latency,
        )?)
    }

    /// Builds the runtime network for an already-validated topology.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ConfigInvalid`] if an edge has non-positive
    /// bandwidth (cannot happen for a [`Topology`] that passed its own
    /// validation).
    pub fn from_topology(topo: Topology) -> Result<LinkNetwork, SimError> {
        let links = topo
            .edges()
            .iter()
            .map(|e| Link::new(e.bytes_per_cycle, e.latency))
            .collect::<Result<Vec<_>, _>>()?;
        let transit = vec![(0, 0); topo.num_nodes()];
        let num_edges = topo.edges().len();
        Ok(LinkNetwork {
            topo,
            links,
            flows: Slab::new(),
            transit,
            injected: 0,
            delivered: 0,
            drain_scratch: Vec::new(),
            dead: vec![false; num_edges],
            degraded: vec![false; num_edges],
            pending_drops: 0,
            pending_fwd_drops: 0,
            pending_dups: 0,
            dropped: 0,
            duplicated: 0,
            flow_desync: 0,
        })
    }

    /// The topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    #[inline]
    fn node_id_of(&self, node: usize) -> NodeId {
        if node == self.topo.num_gpus {
            NodeId::Cpu
        } else {
            NodeId::Gpu(node)
        }
    }

    /// First-hop edge for `src → dst`, panicking on self-sends like the
    /// historic pairwise table did.
    #[inline]
    fn first_hop(&self, src: NodeId, dst: NodeId) -> usize {
        let s = self.topo.endpoint_index(src);
        let d = self.topo.endpoint_index(dst);
        assert!(s != d, "no self-link");
        let e = self.topo.next_hop_edge(s, d);
        debug_assert!(e != NO_ROUTE, "unroutable pair in validated topology");
        e as usize
    }

    /// Whether the first-hop link of `src → dst`'s route has a
    /// serialization backlog extending more than `horizon` cycles past
    /// `now`. Senders use this as back-pressure instead of piling
    /// unbounded traffic onto a saturated link.
    pub fn congested(&self, src: NodeId, dst: NodeId, now: Cycle, horizon: u64) -> bool {
        self.links[self.first_hop(src, dst)].next_free() > Cycle(now.0 + horizon)
    }

    /// Sends `bytes` from `src` to `dst` along the static route.
    ///
    /// # Panics
    ///
    /// Panics on self-sends or out-of-range GPU ids.
    pub fn send(&mut self, src: NodeId, dst: NodeId, token: u64, bytes: u64, now: Cycle) {
        let e = self.first_hop(src, dst);
        self.injected += 1;
        if self.topo.single_hop {
            self.links[e].send(token, bytes, now);
        } else {
            let s = self.topo.endpoint_index(src) as u32;
            let d = self.topo.endpoint_index(dst) as u32;
            let flow = self.flows.insert(Flow {
                token,
                src: s,
                dst: d,
                bytes,
            });
            self.links[e].send(flow, bytes, now);
        }
    }

    /// Advances all links, returning every delivery due by `now`.
    pub fn tick(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    /// Advances all links in edge order, appending every delivery due by
    /// `now` to `out` (allocation-free variant of [`LinkNetwork::tick`];
    /// `out` is NOT cleared). Per-link `min_arrival` caches make a link
    /// with nothing due cost one compare. Transit arrivals at a
    /// non-destination node are immediately re-sent on the next hop; the
    /// new arrival is strictly in the future, so in-tick iteration order
    /// cannot observe it.
    pub fn tick_into(&mut self, now: Cycle, out: &mut Vec<Delivery>) {
        let mut scratch = std::mem::take(&mut self.drain_scratch);
        if self.topo.single_hop {
            for i in 0..self.links.len() {
                if self.links[i].min_arrival > now.0 {
                    continue;
                }
                scratch.clear();
                self.links[i].tick_into(now, &mut scratch);
                let e = self.topo.edges[i];
                let src = self.node_id_of(e.from);
                let dst = self.node_id_of(e.to);
                for &token in &scratch {
                    if self.take_drop() {
                        continue;
                    }
                    self.delivered += 1;
                    out.push(Delivery { token, src, dst });
                    if self.take_dup() {
                        self.delivered += 1;
                        out.push(Delivery { token, src, dst });
                    }
                }
            }
        } else {
            for i in 0..self.links.len() {
                if self.links[i].min_arrival > now.0 {
                    continue;
                }
                scratch.clear();
                self.links[i].tick_into(now, &mut scratch);
                let at = self.topo.edges[i].to;
                for &flow_token in &scratch {
                    let Some(&flow) = self.flows.get(flow_token) else {
                        // A wire token without a flow entry is impossible
                        // in conservative operation (every in-flight token
                        // is minted by `send` / migrated by `fail_link`).
                        // Count and drop instead of panicking: the run
                        // degrades and the conservation sanitizer reports
                        // the imbalance at its next check.
                        self.flow_desync += 1;
                        continue;
                    };
                    if at as u32 == flow.dst {
                        self.flows.remove(flow_token);
                        if self.take_drop() {
                            continue;
                        }
                        self.delivered += 1;
                        let d = Delivery {
                            token: flow.token,
                            src: self.node_id_of(flow.src as usize),
                            dst: self.node_id_of(flow.dst as usize),
                        };
                        out.push(d);
                        if self.take_dup() {
                            self.delivered += 1;
                            out.push(d);
                        }
                    } else {
                        self.transit[at].0 += 1;
                        if self.take_fwd_drop() {
                            // Lost in transit: the flow dies at this node
                            // (received but never forwarded — the per-hop
                            // conservation invariant's bait).
                            self.flows.remove(flow_token);
                        } else {
                            self.transit[at].1 += 1;
                            let next = self.topo.next_hop_edge(at, flow.dst as usize);
                            debug_assert!(next != NO_ROUTE, "transit node lost its route");
                            self.links[next as usize].send(flow_token, flow.bytes, now);
                        }
                    }
                }
            }
        }
        self.drain_scratch = scratch;
    }

    /// Consumes one armed packet drop, if any (fault injection).
    #[inline]
    fn take_drop(&mut self) -> bool {
        if self.pending_drops != 0 {
            self.pending_drops -= 1;
            self.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Consumes one armed transit-forward drop, if any (fault injection).
    #[inline]
    fn take_fwd_drop(&mut self) -> bool {
        if self.pending_fwd_drops != 0 {
            self.pending_fwd_drops -= 1;
            self.dropped += 1;
            true
        } else {
            false
        }
    }

    /// Consumes one armed packet duplication, if any (fault injection).
    #[inline]
    fn take_dup(&mut self) -> bool {
        if self.pending_dups != 0 {
            self.pending_dups -= 1;
            self.duplicated += 1;
            true
        } else {
            false
        }
    }

    /// Total bytes sent over GPU-class links (every edge not touching the
    /// CPU node — the all-to-all mesh, ring hops, switch ports and
    /// inter-pod backplane).
    pub fn gpu_bytes_sent(&self) -> u64 {
        self.class_bytes(false)
    }

    /// Total bytes sent over CPU links (both directions of every edge
    /// touching the CPU node).
    pub fn cpu_bytes_sent(&self) -> u64 {
        self.class_bytes(true)
    }

    fn class_bytes(&self, cpu_class: bool) -> u64 {
        let cpu = self.topo.num_gpus;
        self.topo
            .edges
            .iter()
            .zip(&self.links)
            .filter(|(e, _)| (e.from == cpu || e.to == cpu) == cpu_class)
            .map(|(_, l)| l.bytes_sent())
            .sum()
    }

    /// Peak utilization across GPU-class links over `elapsed` cycles.
    pub fn max_gpu_link_utilization(&self, elapsed: Cycle) -> f64 {
        let cpu = self.topo.num_gpus;
        self.topo
            .edges
            .iter()
            .zip(&self.links)
            .filter(|(e, _)| e.from != cpu && e.to != cpu)
            .map(|(_, l)| l.utilization(elapsed))
            .fold(0.0, f64::max)
    }

    /// End-to-end message counters: `(injected, delivered)`. An injection
    /// is one [`LinkNetwork::send`]; a delivery is an arrival at the
    /// final destination (transit hops are not counted). Both are
    /// monotonic, so their sum serves as a progress signature for the
    /// engine watchdog, and the sanitizer checks `delivered <= injected`
    /// every tick and equality at run end.
    pub fn message_counts(&self) -> (u64, u64) {
        (self.injected, self.delivered)
    }

    /// Per-node transit counters `(received, forwarded)`, indexed by node
    /// (GPUs, then CPU, then switches). A conservative network keeps
    /// `forwarded <= received` at every instant and equality whenever it
    /// is drained; the sanitizer's per-hop conservation check consumes
    /// this table. All zeros on single-hop topologies (and always for the
    /// CPU, which never forwards).
    pub fn transit_counts(&self) -> &[(u64, u64)] {
        &self.transit
    }

    /// Sum of transit hops across all nodes, `(received, forwarded)`.
    /// Monotonic; folded into the watchdog progress signature so long
    /// multi-hop flights still register forward progress.
    pub fn transit_totals(&self) -> (u64, u64) {
        self.transit
            .iter()
            .fold((0, 0), |(r, f), &(tr, tf)| (r + tr, f + tf))
    }

    /// Number of directional edges (links) in the topology; fault plans
    /// resolve their edge hints modulo this.
    pub fn num_edges(&self) -> usize {
        self.links.len()
    }

    /// Per-link occupancy breakdowns for the cycle-accounting profiler, in
    /// edge order: labeled serialization / queueing / fault-degraded wire
    /// time accumulated over all sends.
    pub fn link_occupancies(&self) -> Vec<LinkOccupancy> {
        self.links
            .iter()
            .enumerate()
            .map(|(e, link)| {
                let (ser_cycles, queue_cycles, degraded_cycles) = link.occupancy();
                LinkOccupancy {
                    label: self.edge_label(e),
                    ser_cycles,
                    queue_cycles,
                    degraded_cycles,
                }
            })
            .collect()
    }

    /// Human-readable route of edge `e`, e.g. `"gpu0->gpu1"`.
    pub fn edge_label(&self, e: usize) -> String {
        let edge = self.topo.edges[e];
        format!(
            "{}->{}",
            self.topo.node_label(edge.from),
            self.topo.node_label(edge.to)
        )
    }

    /// Throttles edge `e` to `percent`% (1..=100) of its built bandwidth
    /// (fault injection: a degradation window). Affects only future
    /// serialization; in-flight arrivals keep their cycles. 100 restores
    /// full speed. No effect on a dead link.
    pub fn set_link_bandwidth_factor(&mut self, e: usize, percent: u32) {
        if self.dead[e] {
            return;
        }
        let pct = percent.clamp(1, 100);
        let base = self.topo.edges[e].bytes_per_cycle;
        self.links[e].set_bytes_per_cycle(base * pct as f64 / 100.0);
        self.degraded[e] = pct != 100;
    }

    /// Kills edge `e` permanently (fault injection: a link outage) and
    /// recomputes the route table around it. Messages already serialized
    /// onto the dead wire still arrive (they are physically in transit);
    /// no new traffic is routed over it. If the outage flips a
    /// single-hop graph into routed mode, raw in-flight tokens are
    /// migrated into the flow table so arrivals keep one code path.
    ///
    /// Returns the number of next-hop table entries that changed
    /// (reroute accounting), 0 if the edge was already dead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FabricPartitioned`] naming the first severed
    /// endpoint pair when the surviving graph is unroutable; the network
    /// is left unchanged (beyond marking the edge dead) and the caller
    /// terminates the run.
    pub fn fail_link(&mut self, e: usize, now: Cycle) -> Result<u64, SimError> {
        if self.dead[e] {
            return Ok(0);
        }
        self.dead[e] = true;
        let (next_hop, unroutable) = route_table(
            self.topo.num_gpus,
            self.topo.num_nodes(),
            &self.topo.edges,
            Some(&self.dead),
        );
        if let Some((a, b)) = unroutable {
            return Err(SimError::FabricPartitioned {
                from: self.topo.node_label(a),
                to: self.topo.node_label(b),
                cycle: now.0,
            });
        }
        let changed = self
            .topo
            .next_hop
            .iter()
            .zip(&next_hop)
            .filter(|(old, new)| old != new)
            .count() as u64;
        self.topo.next_hop = next_hop;
        let was_single_hop = self.topo.single_hop;
        self.topo.recompute_single_hop();
        if was_single_hop && !self.topo.single_hop {
            // Mid-run fast-path exit: tokens already on the wire were
            // sent raw (no flow entry). Migrate them so the routed
            // arrival path can look every one of them up. Each is one
            // hop from its destination by construction, so src/dst are
            // the edge endpoints and the byte size is never needed
            // again (it only matters for forwarding).
            let LinkNetwork {
                topo, links, flows, ..
            } = self;
            for (i, link) in links.iter_mut().enumerate() {
                let edge = topo.edges[i];
                link.retag_in_flight(|token| {
                    flows.insert(Flow {
                        token,
                        src: edge.from as u32,
                        dst: edge.to as u32,
                        bytes: 0,
                    })
                });
            }
        }
        Ok(changed)
    }

    /// Arms `n` packet drops: the next `n` final-hop deliveries vanish
    /// (fault injection; deliberately violates NoC conservation).
    pub fn inject_packet_drops(&mut self, n: u32) {
        self.pending_drops = self.pending_drops.saturating_add(n);
    }

    /// Arms `n` transit-forward drops: the next `n` messages arriving at
    /// a forwarding node die there (violates per-hop conservation).
    /// Consumed only on multi-hop fabrics — single-hop graphs have no
    /// transit hops.
    pub fn inject_forward_drops(&mut self, n: u32) {
        self.pending_fwd_drops = self.pending_fwd_drops.saturating_add(n);
    }

    /// Arms `n` packet duplications: the next `n` final-hop deliveries
    /// arrive twice (violates conservation and token lifecycle).
    pub fn inject_packet_dups(&mut self, n: u32) {
        self.pending_dups = self.pending_dups.saturating_add(n);
    }

    /// Packets dropped by consumed injections (final-hop + transit).
    pub fn dropped_packet_count(&self) -> u64 {
        self.dropped
    }

    /// Extra deliveries produced by consumed duplication injections.
    pub fn duplicated_packet_count(&self) -> u64 {
        self.duplicated
    }

    /// Arrived wire tokens that had no flow entry (always 0 in
    /// conservative operation; counted instead of panicking).
    pub fn flow_desync_count(&self) -> u64 {
        self.flow_desync
    }

    /// Number of links currently dead or throttled below full bandwidth.
    pub fn impaired_link_count(&self) -> usize {
        (0..self.links.len())
            .filter(|&i| self.dead[i] || self.degraded[i])
            .count()
    }

    /// One line per impaired link (dead or degraded), for watchdog stall
    /// diagnostics and fault-state reports. Empty when the fabric is
    /// healthy.
    pub fn fault_report(&self) -> Vec<String> {
        (0..self.links.len())
            .filter_map(|i| {
                if self.dead[i] {
                    Some(format!("link {} [e{i}]: DEAD (outage)", self.edge_label(i)))
                } else if self.degraded[i] {
                    Some(format!(
                        "link {} [e{i}]: degraded to {:.2} B/cyc (built {:.2})",
                        self.edge_label(i),
                        self.links[i].bytes_per_cycle(),
                        self.topo.edges[i].bytes_per_cycle,
                    ))
                } else {
                    None
                }
            })
            .collect()
    }

    /// One diagnostic line per link with traffic in flight: route, queue
    /// depth, and the arrival cycle of its oldest message. Empty when the
    /// network is idle.
    pub fn occupancy_report(&self) -> Vec<String> {
        self.snapshot().occupancy_report()
    }

    /// Point-in-time per-link and per-switch occupancy. Read-only; the
    /// single source behind [`LinkNetwork::occupancy_report`] and the
    /// telemetry sampler.
    pub fn snapshot(&self) -> NetSnapshot {
        let links = self
            .topo
            .edges
            .iter()
            .zip(&self.links)
            .map(|(e, l)| LinkSnapshot {
                route: format!(
                    "{}->{}",
                    self.topo.node_label(e.from),
                    self.topo.node_label(e.to)
                ),
                in_flight: l.in_flight(),
                oldest_arrival: l.oldest_in_flight_arrival(),
                bytes_sent: l.bytes_sent(),
            })
            .collect();
        let cpu = self.topo.num_gpus;
        let switches = (cpu + 1..self.topo.num_nodes())
            .map(|n| SwitchSnapshot {
                node: self.topo.node_label(n),
                transit_received: self.transit[n].0,
                transit_forwarded: self.transit[n].1,
                queued: self
                    .topo
                    .edges
                    .iter()
                    .zip(&self.links)
                    .filter(|(e, _)| e.from == n)
                    .map(|(_, l)| l.in_flight())
                    .sum(),
            })
            .collect();
        NetSnapshot { links, switches }
    }

    /// Cumulative bytes sent on GPU `g`'s outbound links (every edge
    /// leaving the GPU node — peers and CPU, plus switch uplinks and, on
    /// a ring, forwarded transit). Monotonic; the telemetry sampler
    /// differences it per interval for outbound bandwidth.
    pub fn gpu_outbound_bytes(&self, g: usize) -> u64 {
        assert!(g < self.topo.num_gpus);
        self.topo
            .edges
            .iter()
            .zip(&self.links)
            .filter(|(e, _)| e.from == g)
            .map(|(_, l)| l.bytes_sent())
            .sum()
    }

    /// Messages currently in flight on GPU `g`'s outbound links.
    /// Point-in-time occupancy, not monotonic.
    pub fn gpu_outbound_in_flight(&self, g: usize) -> usize {
        assert!(g < self.topo.num_gpus);
        self.topo
            .edges
            .iter()
            .zip(&self.links)
            .filter(|(e, _)| e.from == g)
            .map(|(_, l)| l.in_flight())
            .sum()
    }

    /// Whether every link is quiescent (no message on any hop).
    pub fn is_idle(&self) -> bool {
        self.links.iter().all(Link::is_idle)
    }

    /// Number of GPU nodes.
    pub fn num_gpus(&self) -> usize {
        self.topo.num_gpus
    }
}

/// Point-in-time occupancy of one link (see [`NetSnapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSnapshot {
    /// Human-readable route, e.g. `"gpu0->gpu1"`, `"gpu2->cpu"`,
    /// `"cpu->gpu3"`, `"sw0->gpu7"`.
    pub route: String,
    /// Messages in flight on the link.
    pub in_flight: usize,
    /// Arrival cycle of the oldest in-flight message, if any.
    pub oldest_arrival: Option<u64>,
    /// Cumulative bytes accepted by the link.
    pub bytes_sent: u64,
}

/// Point-in-time occupancy of one switch node (see [`NetSnapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchSnapshot {
    /// Node label, e.g. `"sw0"`.
    pub node: String,
    /// Cumulative transit messages received (not destined here).
    pub transit_received: u64,
    /// Cumulative transit messages forwarded onward.
    pub transit_forwarded: u64,
    /// Messages currently queued on the switch's outgoing links.
    pub queued: usize,
}

/// Point-in-time occupancy snapshot of the whole interconnect, links in
/// edge (tick) order, plus per-switch transit occupancy (empty for
/// switchless topologies).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Per-link occupancy.
    pub links: Vec<LinkSnapshot>,
    /// Per-switch occupancy.
    pub switches: Vec<SwitchSnapshot>,
}

impl NetSnapshot {
    /// Human-readable lines naming every link with traffic in flight and
    /// every switch with queued transit (empty when the network is idle).
    /// Used verbatim in watchdog stall reports.
    pub fn occupancy_report(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .links
            .iter()
            .filter(|l| l.in_flight > 0)
            .map(|l| {
                format!(
                    "link {}: in_flight={} oldest_arrival={}",
                    l.route,
                    l.in_flight,
                    l.oldest_arrival.unwrap_or(0),
                )
            })
            .collect();
        lines.extend(self.switches.iter().filter(|s| s.queued > 0).map(|s| {
            format!(
                "switch {}: queued={} transit_received={} transit_forwarded={}",
                s.node, s.queued, s.transit_received, s.transit_forwarded,
            )
        }));
        lines
    }
}

impl NextEvent for LinkNetwork {
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for link in &self.links {
            horizon = earliest(horizon, link.next_event(now));
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_arrives_after_serialization_plus_latency() {
        let mut l = Link::new(8.0, 100).expect("valid");
        l.send(42, 160, Cycle(0));
        // 160/8 = 20 cycles serialization + 100 latency = arrival 120.
        assert!(l.tick(Cycle(119)).is_empty());
        assert_eq!(l.tick(Cycle(120)), vec![42]);
        assert!(l.is_idle());
    }

    #[test]
    fn back_to_back_messages_queue_on_bandwidth() {
        let mut l = Link::new(8.0, 0).expect("valid");
        l.send(1, 160, Cycle(0));
        l.send(2, 160, Cycle(0));
        // First done serializing at 20, second at 40.
        let mut arrivals = Vec::new();
        for c in 0..=40u64 {
            for t in l.tick(Cycle(c)) {
                arrivals.push((t, c));
            }
        }
        assert_eq!(arrivals, vec![(1, 20), (2, 40)]);
    }

    #[test]
    fn non_positive_bandwidth_is_a_config_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = Link::new(bad, 10).expect_err("must reject");
            assert!(
                err.to_string().contains("link bandwidth must be positive"),
                "{err}"
            );
        }
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut l = Link::new(2.0, 0).expect("valid");
        for i in 0..100 {
            l.send(i, 128, Cycle(0));
        }
        assert!((l.utilization(Cycle(100)) - 1.0).abs() < 1e-9);
        assert!(l.utilization(Cycle::ZERO) == 0.0);
    }

    #[test]
    fn network_routes_between_gpus_and_cpu() {
        let mut net = LinkNetwork::new(4, 8.0, 10, 4.0, 20).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(3), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(2), NodeId::Cpu, 2, 32, Cycle(0));
        net.send(NodeId::Cpu, NodeId::Gpu(1), 3, 32, Cycle(0));
        let mut seen = Vec::new();
        for c in 0..100u64 {
            seen.extend(net.tick(Cycle(c)));
        }
        assert_eq!(seen.len(), 3);
        assert!(seen.contains(&Delivery {
            token: 1,
            src: NodeId::Gpu(0),
            dst: NodeId::Gpu(3)
        }));
        assert!(seen.contains(&Delivery {
            token: 2,
            src: NodeId::Gpu(2),
            dst: NodeId::Cpu
        }));
        assert!(net.is_idle());
    }

    #[test]
    fn distinct_links_do_not_interfere() {
        let mut net = LinkNetwork::new(2, 1.0, 0, 1.0, 0).expect("valid");
        // Saturate 0->1; 1->0 stays fast.
        for i in 0..10 {
            net.send(NodeId::Gpu(0), NodeId::Gpu(1), i, 128, Cycle(0));
        }
        net.send(NodeId::Gpu(1), NodeId::Gpu(0), 99, 32, Cycle(0));
        let deliveries: Vec<_> = (0..=32u64).flat_map(|c| net.tick(Cycle(c))).collect();
        assert!(deliveries.iter().any(|d| d.token == 99));
    }

    #[test]
    #[should_panic(expected = "no self-link")]
    fn self_link_panics() {
        let mut net = LinkNetwork::new(2, 1.0, 0, 1.0, 0).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(0), 0, 32, Cycle(0));
    }

    #[test]
    fn next_event_points_at_earliest_arrival() {
        let mut l = Link::new(8.0, 100).expect("valid");
        assert_eq!(l.next_event(Cycle(0)), None);
        l.send(1, 160, Cycle(0)); // arrives at 120
        l.send(2, 160, Cycle(0)); // arrives at 140
        assert_eq!(l.next_event(Cycle(0)), Some(Cycle(120)));
        assert!(l.tick(Cycle(119)).is_empty());
        assert_eq!(l.tick(Cycle(120)), vec![1]);
        assert_eq!(l.next_event(Cycle(120)), Some(Cycle(140)));
        let mut net = LinkNetwork::new(2, 8.0, 10, 4.0, 20).expect("valid");
        assert_eq!(net.next_event(Cycle(0)), None);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 7, 32, Cycle(0));
        // 32/8 = 4 serialization + 10 latency.
        assert_eq!(net.next_event(Cycle(0)), Some(Cycle(14)));
    }

    #[test]
    fn message_counts_and_occupancy_report_track_in_flight_traffic() {
        let mut net = LinkNetwork::new(2, 8.0, 100, 8.0, 100).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(1), NodeId::Cpu, 2, 32, Cycle(0));
        assert_eq!(net.message_counts(), (2, 0));
        let report = net.occupancy_report();
        assert_eq!(report.len(), 2);
        assert!(report.iter().any(|l| l.contains("gpu0->gpu1")));
        assert!(report.iter().any(|l| l.contains("gpu1->cpu")));
        for c in 0..=200u64 {
            net.tick(Cycle(c));
        }
        assert_eq!(net.message_counts(), (2, 2));
        assert!(net.occupancy_report().is_empty());
    }

    #[test]
    fn byte_accounting_split_by_kind() {
        let mut net = LinkNetwork::new(2, 8.0, 0, 8.0, 0).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 0, msg::REQ_BYTES, Cycle(0));
        net.send(
            NodeId::Gpu(0),
            NodeId::Cpu,
            1,
            msg::WRITE_DATA_BYTES,
            Cycle(0),
        );
        assert_eq!(net.gpu_bytes_sent(), 32);
        assert_eq!(net.cpu_bytes_sent(), 160);
    }

    // ----------------------------------------------------------------
    // Routed-topology tests.

    #[test]
    fn all_to_all_is_single_hop_with_historic_edge_order() {
        let topo = Topology::build(TopologySpec::AllToAll, 3, 8.0, 10, 4.0, 20).expect("valid");
        assert!(topo.is_single_hop());
        assert_eq!(topo.num_switches(), 0);
        // GPU pairs row-major, then per-GPU to-CPU / from-CPU interleaved:
        // the historic pairwise table's tick order.
        let routes: Vec<String> = topo
            .edges()
            .iter()
            .map(|e| format!("{}->{}", topo.node_label(e.from), topo.node_label(e.to)))
            .collect();
        assert_eq!(
            routes,
            vec![
                "gpu0->gpu1",
                "gpu0->gpu2",
                "gpu1->gpu0",
                "gpu1->gpu2",
                "gpu2->gpu0",
                "gpu2->gpu1",
                "gpu0->cpu",
                "cpu->gpu0",
                "gpu1->cpu",
                "cpu->gpu1",
                "gpu2->cpu",
                "cpu->gpu2",
            ]
        );
    }

    #[test]
    fn all_to_all_same_tick_delivery_order_matches_pairwise_table() {
        // Six messages arriving on the same cycle must drain in the
        // historic order: GPU pairs row-major, then per-GPU CPU pairs.
        let mut net = LinkNetwork::new(2, 32.0, 10, 32.0, 10).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(1), NodeId::Gpu(0), 2, 32, Cycle(0));
        net.send(NodeId::Gpu(0), NodeId::Cpu, 3, 32, Cycle(0));
        net.send(NodeId::Cpu, NodeId::Gpu(0), 4, 32, Cycle(0));
        net.send(NodeId::Gpu(1), NodeId::Cpu, 5, 32, Cycle(0));
        net.send(NodeId::Cpu, NodeId::Gpu(1), 6, 32, Cycle(0));
        let tokens: Vec<u64> = net.tick(Cycle(11)).iter().map(|d| d.token).collect();
        assert_eq!(tokens, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn switch_topology_pays_two_hops() {
        let topo = Topology::build(TopologySpec::Switch, 4, 8.0, 100, 4.0, 200).expect("valid");
        assert!(!topo.is_single_hop());
        assert_eq!(topo.num_switches(), 1);
        assert_eq!(topo.hop_count(NodeId::Gpu(0), NodeId::Gpu(1)), 2);
        assert_eq!(
            topo.route_labels(NodeId::Gpu(2), NodeId::Cpu),
            vec!["gpu2", "sw0", "cpu"]
        );
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 7, 160, Cycle(0));
        // Hop 1: 160/8 = 20 ser + 100 latency -> arrives at sw0 at 120.
        // Hop 2: starts at 120, 20 ser + 100 latency -> arrives at 240.
        let mut seen = Vec::new();
        for c in 0..=239u64 {
            seen.extend(net.tick(Cycle(c)));
        }
        assert!(seen.is_empty(), "multi-hop delivery must pay both hops");
        assert_eq!(
            net.tick(Cycle(240)),
            vec![Delivery {
                token: 7,
                src: NodeId::Gpu(0),
                dst: NodeId::Gpu(1)
            }]
        );
        assert!(net.is_idle());
        // One transit hop at the switch, conserved.
        assert_eq!(net.transit_counts()[5], (1, 1));
        assert_eq!(net.message_counts(), (1, 1));
    }

    #[test]
    fn multi_hop_event_horizon_tracks_forwarded_messages() {
        let topo = Topology::build(TopologySpec::Switch, 2, 8.0, 100, 4.0, 200).expect("valid");
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 160, Cycle(0));
        // First hop arrives at 120.
        assert_eq!(net.next_event(Cycle(0)), Some(Cycle(120)));
        assert!(net.tick(Cycle(120)).is_empty());
        // The forward is now in flight; the horizon must point at it,
        // not report idle (the event-skip engine would stall otherwise).
        assert_eq!(net.next_event(Cycle(120)), Some(Cycle(240)));
        assert_eq!(net.tick(Cycle(240)).len(), 1);
        assert_eq!(net.next_event(Cycle(240)), None);
    }

    #[test]
    fn ring_routes_shortest_direction_clockwise_on_ties() {
        let topo = Topology::build(TopologySpec::Ring, 4, 8.0, 10, 4.0, 20).expect("valid");
        // One hop to the clockwise neighbour.
        assert_eq!(
            topo.route_labels(NodeId::Gpu(0), NodeId::Gpu(1)),
            vec!["gpu0", "gpu1"]
        );
        // One hop counter-clockwise (not three hops around).
        assert_eq!(
            topo.route_labels(NodeId::Gpu(0), NodeId::Gpu(3)),
            vec!["gpu0", "gpu3"]
        );
        // Two hops either way: the tie breaks clockwise.
        assert_eq!(
            topo.route_labels(NodeId::Gpu(0), NodeId::Gpu(2)),
            vec!["gpu0", "gpu1", "gpu2"]
        );
        // CPU links are dedicated, one hop, and never used for transit.
        assert_eq!(topo.hop_count(NodeId::Gpu(2), NodeId::Cpu), 1);
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(2), 9, 160, Cycle(0));
        let mut got = Vec::new();
        for c in 0..200u64 {
            got.extend(net.tick(Cycle(c)));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src, NodeId::Gpu(0));
        assert_eq!(got[0].dst, NodeId::Gpu(2));
        // GPU 1 forwarded one transit message.
        assert_eq!(net.transit_counts()[1], (1, 1));
    }

    #[test]
    fn hierarchical_pods_route_direct_inside_and_via_switches_between() {
        let topo = Topology::build(
            TopologySpec::Hierarchical { pod_size: 4 },
            8,
            8.0,
            10,
            4.0,
            20,
        )
        .expect("valid");
        assert_eq!(topo.num_switches(), 2);
        // Intra-pod: direct link.
        assert_eq!(topo.hop_count(NodeId::Gpu(0), NodeId::Gpu(3)), 1);
        // Inter-pod: gpu -> pod switch -> peer switch -> gpu.
        assert_eq!(
            topo.route_labels(NodeId::Gpu(1), NodeId::Gpu(6)),
            vec!["gpu1", "sw0", "sw1", "gpu6"]
        );
        // The inter-pod backplane runs slower than the in-pod mesh.
        let backplane = topo
            .edges()
            .iter()
            .find(|e| e.from == 9 && e.to == 10)
            .expect("sw0->sw1 edge");
        assert!((backplane.bytes_per_cycle - 8.0 * INTER_POD_BW_FACTOR).abs() < 1e-12);
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.send(NodeId::Gpu(1), NodeId::Gpu(6), 1, 160, Cycle(0));
        net.send(NodeId::Gpu(6), NodeId::Gpu(1), 2, 160, Cycle(0));
        let mut got = Vec::new();
        for c in 0..1000u64 {
            got.extend(net.tick(Cycle(c)));
        }
        assert_eq!(got.len(), 2);
        assert!(net.is_idle());
        // Each direction transited both switches once.
        assert_eq!(net.transit_counts()[9], (2, 2));
        assert_eq!(net.transit_counts()[10], (2, 2));
        let (tr, tf) = net.transit_totals();
        assert_eq!((tr, tf), (4, 4));
        assert_eq!(net.message_counts(), (2, 2));
    }

    #[test]
    fn cpu_never_forwards_transit_traffic() {
        // A pathological custom graph where the only 2-hop gpu0->gpu1
        // path runs through the CPU must be rejected as unroutable.
        let err = Topology::custom(
            2,
            0,
            vec![
                EdgeSpec {
                    from: 0,
                    to: 2,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 2,
                    to: 0,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 1,
                    to: 2,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 2,
                    to: 1,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
            ],
        )
        .expect_err("cpu is a leaf");
        assert!(err.to_string().contains("no route"), "{err}");
    }

    #[test]
    fn disconnected_topology_is_rejected_with_actionable_message() {
        let err = Topology::custom(
            2,
            0,
            vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 0,
                    to: 2,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 2,
                    to: 0,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 2,
                    to: 1,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
            ],
        )
        .expect_err("gpu1 cannot reach anyone");
        let msg = err.to_string();
        assert!(msg.contains("no route from gpu1"), "{msg}");
        assert!(msg.contains("connected"), "{msg}");
    }

    #[test]
    fn zero_bandwidth_edge_is_rejected() {
        let err = Topology::custom(
            1,
            0,
            vec![
                EdgeSpec {
                    from: 0,
                    to: 1,
                    bytes_per_cycle: 0.0,
                    latency: 10,
                },
                EdgeSpec {
                    from: 1,
                    to: 0,
                    bytes_per_cycle: 8.0,
                    latency: 10,
                },
            ],
        )
        .expect_err("zero bandwidth");
        assert!(
            err.to_string().contains("link bandwidth must be positive"),
            "{err}"
        );
    }

    #[test]
    fn oversized_and_degenerate_specs_are_rejected() {
        let err =
            Topology::build(TopologySpec::AllToAll, 0, 8.0, 10, 4.0, 20).expect_err("zero gpus");
        assert!(err.to_string().contains("num_gpus"), "{err}");
        let err = Topology::build(TopologySpec::AllToAll, MAX_GPUS + 1, 8.0, 10, 4.0, 20)
            .expect_err("too many gpus");
        assert!(err.to_string().contains("at most 64"), "{err}");
        let err = Topology::build(
            TopologySpec::Hierarchical { pod_size: 3 },
            8,
            8.0,
            10,
            4.0,
            20,
        )
        .expect_err("pod size must tile");
        assert!(err.to_string().contains("pod_size"), "{err}");
        let err =
            Topology::build(TopologySpec::Switch, 4, -1.0, 10, 4.0, 20).expect_err("negative bw");
        assert!(
            err.to_string().contains("link bandwidth must be positive"),
            "{err}"
        );
    }

    #[test]
    fn every_generator_scales_to_64_gpus() {
        for spec in [
            TopologySpec::AllToAll,
            TopologySpec::Switch,
            TopologySpec::Ring,
            TopologySpec::Hierarchical { pod_size: 8 },
        ] {
            let topo = Topology::build(spec, 64, 8.0, 10, 4.0, 20)
                .unwrap_or_else(|e| panic!("{spec:?} at 64 GPUs: {e}"));
            let mut net = LinkNetwork::from_topology(topo).expect("valid");
            // Cross-machine traffic drains fully on every shape.
            net.send(NodeId::Gpu(0), NodeId::Gpu(63), 1, 160, Cycle(0));
            net.send(NodeId::Gpu(63), NodeId::Cpu, 2, 160, Cycle(0));
            net.send(NodeId::Cpu, NodeId::Gpu(31), 3, 160, Cycle(0));
            let mut got = Vec::new();
            for c in 0..100_000u64 {
                if net.is_idle() {
                    break;
                }
                got.extend(net.tick(Cycle(c)));
            }
            assert_eq!(got.len(), 3, "{spec:?}");
            assert_eq!(net.message_counts(), (3, 3), "{spec:?}");
            let (tr, tf) = net.transit_totals();
            assert_eq!(tr, tf, "{spec:?} transit conservation");
        }
    }

    #[test]
    fn switch_snapshot_reports_queued_transit() {
        let topo = Topology::build(TopologySpec::Switch, 2, 8.0, 100, 4.0, 200).expect("valid");
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 160, Cycle(0));
        net.tick(Cycle(120)); // lands on sw0, forwarded
        let snap = net.snapshot();
        assert_eq!(snap.switches.len(), 1);
        assert_eq!(snap.switches[0].node, "sw0");
        assert_eq!(snap.switches[0].transit_received, 1);
        assert_eq!(snap.switches[0].transit_forwarded, 1);
        assert_eq!(snap.switches[0].queued, 1);
        assert!(net
            .occupancy_report()
            .iter()
            .any(|l| l.contains("switch sw0")));
    }

    #[test]
    fn congestion_uses_first_hop_backlog() {
        let topo = Topology::build(TopologySpec::Switch, 2, 1.0, 0, 1.0, 0).expect("valid");
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        for i in 0..10 {
            net.send(NodeId::Gpu(0), NodeId::Gpu(1), i, 128, Cycle(0));
        }
        assert!(net.congested(NodeId::Gpu(0), NodeId::Gpu(1), Cycle(0), 100));
        // The reverse direction injects on its own uplink.
        assert!(!net.congested(NodeId::Gpu(1), NodeId::Gpu(0), Cycle(0), 100));
    }

    #[test]
    fn degraded_link_serializes_slower_and_restores() {
        // 2-GPU all-to-all: edge 0 is gpu0->gpu1.
        let mut net = LinkNetwork::new(2, 8.0, 100, 4.0, 200).expect("valid");
        net.set_link_bandwidth_factor(0, 25); // 8.0 -> 2.0 B/cyc
        assert_eq!(net.impaired_link_count(), 1);
        assert!(net.fault_report()[0].contains("gpu0->gpu1"));
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 160, Cycle(0));
        // 160/2 = 80 ser + 100 latency -> 180 (vs 120 at full speed).
        assert!(net.tick(Cycle(179)).is_empty());
        assert_eq!(net.tick(Cycle(180)).len(), 1);
        net.set_link_bandwidth_factor(0, 100);
        assert_eq!(net.impaired_link_count(), 0);
        assert!(net.fault_report().is_empty());
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 2, 160, Cycle(1000));
        assert_eq!(net.tick(Cycle(1120)).len(), 1);
    }

    #[test]
    fn outage_on_all_to_all_reroutes_through_a_peer() {
        // 3-GPU all-to-all: edge 0 is gpu0->gpu1. Killing it forces the
        // route gpu0 -> gpu2 -> gpu1 and exits the single-hop fast path.
        let mut net = LinkNetwork::new(3, 8.0, 10, 4.0, 20).expect("valid");
        assert!(net.topology().is_single_hop());
        let rerouted = net.fail_link(0, Cycle(5)).expect("still routable");
        assert!(rerouted > 0, "route table must change");
        assert!(!net.topology().is_single_hop());
        assert_eq!(
            net.topology()
                .route_labels(NodeId::Gpu(0), NodeId::Gpu(1))
                .len(),
            3,
            "two hops now"
        );
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 7, 160, Cycle(10));
        let mut got = Vec::new();
        for c in 10..200u64 {
            got.extend(net.tick(Cycle(c)));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 7);
        assert_eq!(got[0].dst, NodeId::Gpu(1));
        // gpu2 forwarded the transit hop, conserved.
        assert_eq!(net.transit_counts()[2], (1, 1));
        assert_eq!(net.message_counts(), (1, 1));
        assert_eq!(net.flow_desync_count(), 0);
        // Killing the same edge again is a no-op.
        assert_eq!(net.fail_link(0, Cycle(50)).expect("idempotent"), 0);
    }

    #[test]
    fn outage_migrates_raw_in_flight_tokens_to_flows() {
        // Put a raw token on the wire of a single-hop graph, then kill a
        // different link so the graph flips to routed mode mid-flight.
        let mut net = LinkNetwork::new(3, 8.0, 100, 4.0, 200).expect("valid");
        net.send(NodeId::Gpu(1), NodeId::Gpu(2), 42, 160, Cycle(0));
        net.fail_link(0, Cycle(3)).expect("still routable");
        assert!(!net.topology().is_single_hop());
        // 160/8 = 20 ser + 100 latency -> 120; the migrated token must
        // still deliver with its original token and endpoints.
        let got = net.tick(Cycle(120));
        assert_eq!(
            got,
            vec![Delivery {
                token: 42,
                src: NodeId::Gpu(1),
                dst: NodeId::Gpu(2)
            }]
        );
        assert_eq!(net.flow_desync_count(), 0);
        assert_eq!(net.message_counts(), (1, 1));
    }

    #[test]
    fn partitioning_outage_names_the_severed_pair() {
        // 2-GPU all-to-all edge order: e0 g0->g1, e1 g1->g0, e2 g0->cpu,
        // e3 cpu->g0, e4 g1->cpu, e5 cpu->g1. Killing e0 leaves gpu0 able
        // to reach gpu1 only via the CPU — which never forwards — so the
        // fabric is partitioned.
        let mut net = LinkNetwork::new(2, 8.0, 10, 4.0, 20).expect("valid");
        let err = net.fail_link(0, Cycle(9)).expect_err("cpu cannot forward");
        match err {
            SimError::FabricPartitioned { from, to, cycle } => {
                assert_eq!(from, "gpu0");
                assert_eq!(to, "gpu1");
                assert_eq!(cycle, 9);
            }
            other => panic!("expected FabricPartitioned, got {other:?}"),
        }
    }

    #[test]
    fn injected_drops_and_dups_skew_the_conservation_counters() {
        let mut net = LinkNetwork::new(2, 8.0, 10, 4.0, 20).expect("valid");
        net.inject_packet_drops(1);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 32, Cycle(0));
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 2, 32, Cycle(0));
        let mut got = Vec::new();
        for c in 0..40u64 {
            got.extend(net.tick(Cycle(c)));
        }
        // First delivery vanished; the second survived.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 2);
        assert_eq!(net.dropped_packet_count(), 1);
        assert_eq!(net.message_counts(), (2, 1), "delivered < injected");
        net.inject_packet_dups(1);
        net.send(NodeId::Gpu(1), NodeId::Gpu(0), 3, 32, Cycle(100));
        let mut got = Vec::new();
        for c in 100..140u64 {
            got.extend(net.tick(Cycle(c)));
        }
        assert_eq!(got.len(), 2, "duplicated delivery arrives twice");
        assert_eq!(got[0].token, 3);
        assert_eq!(got[1].token, 3);
        assert_eq!(net.duplicated_packet_count(), 1);
        assert_eq!(net.message_counts(), (3, 3), "dup re-balanced the drop");
    }

    #[test]
    fn injected_forward_drop_breaks_hop_conservation() {
        let topo = Topology::build(TopologySpec::Switch, 2, 8.0, 100, 4.0, 200).expect("valid");
        let mut net = LinkNetwork::from_topology(topo).expect("valid");
        net.inject_forward_drops(1);
        net.send(NodeId::Gpu(0), NodeId::Gpu(1), 1, 160, Cycle(0));
        let mut got = Vec::new();
        for c in 0..400u64 {
            got.extend(net.tick(Cycle(c)));
        }
        assert!(got.is_empty(), "message died at the switch");
        assert_eq!(net.dropped_packet_count(), 1);
        // Received but never forwarded: the hop-conservation gap.
        assert_eq!(net.transit_counts()[3], (1, 0));
        assert!(net.is_idle(), "no flow left dangling");
    }
}
