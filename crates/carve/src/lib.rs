//! CARVE — Caching Remote Data in Video Memory (the paper's contribution).
//!
//! CARVE statically carves a small fraction (the paper evaluates 1.5–12.5%)
//! of each GPU's HBM into a hardware-managed **Remote Data Cache (RDC)**
//! that stores recently accessed *remote* data at 128-byte granularity. GPU
//! memory becomes a hybrid: mostly OS-visible memory, plus a giga-scale
//! DRAM cache invisible to software. Because only remote data is cached
//! (local data has no latency/bandwidth benefit from duplication), nearly
//! every former inter-GPU access is served at local HBM bandwidth.
//!
//! The crate provides the three pieces the paper's Sections IV and V
//! evaluate:
//!
//! * [`rdc`] — the Alloy-style RDC with epoch-counter instant invalidation
//!   and write-through (or ablation write-back) policy,
//! * [`imst`] — the 2-bit In-Memory Sharing Tracker that filters GPU-VI
//!   write-invalidate broadcasts down to genuinely read-write-shared lines,
//! * [`coherence`] — the three coherence designs compared in Figure 11:
//!   `NoCoherence` (upper bound), `Software` (epoch flush at kernel
//!   boundaries) and `Hardware` (GPU-VI + IMST),
//! * [`swc`] — the analytic kernel-launch-delay model behind Table IV,
//! * [`predictor`] — the optional RDC hit predictor that mitigates the
//!   RandAccess-style probe-latency pathology.
//!
//! # Example
//!
//! ```
//! use carve::{Carve, CoherencePolicy, RdcConfig};
//!
//! let mut carve = Carve::new(4, CoherencePolicy::Hardware, RdcConfig::new(2 << 20, 128));
//! // GPU 0 misses on a remote line, fetches it, and inserts it.
//! assert!(!carve.rdc_mut(0).probe(0x8000));
//! carve.rdc_mut(0).insert(0x8000);
//! assert!(carve.rdc_mut(0).probe(0x8000));
//! // A write at the home node to a read-shared line must broadcast.
//! carve.imst_mut(1).on_access(0x8000, false, false); // remote read seen
//! assert!(carve.imst_mut(1).on_access(0x8000, true, true).broadcast);
//! ```

#![warn(missing_docs)]

pub mod coherence;
pub mod directory;
pub mod imst;
pub mod predictor;
pub mod rdc;
pub mod swc;

pub use carve_cache::alloy::EPOCH_MAX;
pub use coherence::{Carve, CoherencePolicy};
pub use directory::Directory;
pub use imst::{Imst, ImstDecision, SharingState};
pub use predictor::HitPredictor;
pub use rdc::{ProbeKind, Rdc, RdcConfig, RdcStats, WritePolicy};
pub use swc::{coherence_delay_model, CoherenceDelays};
