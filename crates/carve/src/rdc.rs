//! The Remote Data Cache.

use carve_cache::alloy::{AlloyCache, AlloyProbe, EPOCH_MAX};

/// Write policy of the RDC.
///
/// The paper evaluates both and adopts write-through: it performs within 1%
/// of write-back (remote data cached at line granularity is heavily
/// read-biased) and makes the kernel-boundary dirty flush free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePolicy {
    /// Stores update the RDC copy and always propagate to the home node.
    #[default]
    WriteThrough,
    /// Stores dirty the RDC copy; a dirty-map flush writes them back at
    /// kernel boundaries (ablation variant).
    WriteBack,
}

/// RDC geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdcConfig {
    /// Carve-out capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes (128 in the paper).
    pub line_size: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl RdcConfig {
    /// Creates a write-through RDC config.
    pub fn new(capacity_bytes: u64, line_size: u64) -> RdcConfig {
        RdcConfig {
            capacity_bytes,
            line_size,
            write_policy: WritePolicy::WriteThrough,
        }
    }
}

/// RDC activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdcStats {
    /// Probes that hit.
    pub hits: u64,
    /// Probes that missed (tag mismatch or empty).
    pub misses: u64,
    /// Probes that missed on a stale epoch (software-coherence flushes).
    pub stale_misses: u64,
    /// Lines inserted.
    pub insertions: u64,
    /// Store updates applied to resident lines.
    pub store_updates: u64,
    /// Invalidation probes that dropped a line.
    pub invalidations: u64,
    /// Epoch bumps (instant whole-cache invalidations).
    pub epoch_bumps: u64,
    /// Physical resets on epoch rollover.
    pub rollover_resets: u64,
}

impl RdcStats {
    /// Hit rate over all probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of an RDC probe, distinguishing *why* it missed so the
/// cycle-accounting profiler can attribute the resulting remote fetch
/// (capacity miss vs software-coherence epoch flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// The line was resident under the current epoch.
    Hit,
    /// Tag mismatch or empty frame (capacity/conflict miss).
    Miss,
    /// Resident data made stale by a kernel-boundary epoch bump.
    StaleEpoch,
}

impl ProbeKind {
    /// Whether the probe hit.
    pub fn is_hit(self) -> bool {
        self == ProbeKind::Hit
    }
}

/// One GPU's Remote Data Cache.
///
/// A thin policy layer over the Alloy tags-with-data array: it owns the
/// 20-bit epoch counter (EPCTR) and implements the paper's instant
/// invalidation — bumping the epoch makes every resident line stale with
/// zero memory traffic; a physical reset only happens on the (rare)
/// counter rollover.
#[derive(Debug)]
pub struct Rdc {
    array: AlloyCache,
    epoch: u32,
    cfg: RdcConfig,
    stats: RdcStats,
}

impl Rdc {
    /// Creates the RDC described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no lines.
    pub fn new(cfg: RdcConfig) -> Rdc {
        Rdc {
            array: AlloyCache::new(cfg.capacity_bytes, cfg.line_size),
            epoch: 0,
            cfg,
            stats: RdcStats::default(),
        }
    }

    /// Probes for `line_addr` under the current epoch. One probe models one
    /// local DRAM access (tags travel with data in the spare ECC bits).
    pub fn probe(&mut self, line_addr: u64) -> bool {
        self.probe_kind(line_addr).is_hit()
    }

    /// Like [`Rdc::probe`] (same statistics side effects) but reports the
    /// miss *kind*, so callers can attribute the remote fetch to a
    /// capacity miss vs a stale software-coherence epoch.
    pub fn probe_kind(&mut self, line_addr: u64) -> ProbeKind {
        match self.array.probe(line_addr, self.epoch) {
            AlloyProbe::Hit => {
                self.stats.hits += 1;
                ProbeKind::Hit
            }
            AlloyProbe::Miss => {
                self.stats.misses += 1;
                ProbeKind::Miss
            }
            AlloyProbe::StaleEpoch => {
                self.stats.stale_misses += 1;
                ProbeKind::StaleEpoch
            }
        }
    }

    /// Whether `line_addr` is resident (no statistics side effects).
    pub fn contains(&self, line_addr: u64) -> bool {
        self.array.contains(line_addr, self.epoch)
    }

    /// Inserts `line_addr` (remote fetch completed). Returns the address of
    /// a dirty victim needing write-back under [`WritePolicy::WriteBack`].
    pub fn insert(&mut self, line_addr: u64) -> Option<u64> {
        self.stats.insertions += 1;
        self.array.insert(line_addr, self.epoch)
    }

    /// Applies a store to `line_addr`. Under write-through the resident
    /// copy is refreshed (stays clean); under write-back it is dirtied.
    /// Returns whether a resident copy was updated (i.e. the store consumed
    /// local DRAM write bandwidth).
    pub fn store(&mut self, line_addr: u64) -> bool {
        let resident = self.array.contains(line_addr, self.epoch);
        if resident {
            self.stats.store_updates += 1;
            if self.cfg.write_policy == WritePolicy::WriteBack {
                self.array.mark_dirty(line_addr, self.epoch);
            }
        }
        resident
    }

    /// Hardware-coherence write-invalidate probe. Returns whether a line
    /// was dropped.
    pub fn invalidate(&mut self, line_addr: u64) -> bool {
        let dropped = self.array.invalidate(line_addr);
        if dropped {
            self.stats.invalidations += 1;
        }
        dropped
    }

    /// Software-coherence kernel-boundary invalidation: bump the epoch
    /// (instant, zero traffic). Under [`WritePolicy::WriteBack`] the dirty
    /// lines that must first be flushed are returned (the dirty-map walk);
    /// under write-through the flush is free and the list empty.
    pub fn kernel_boundary_flush(&mut self) -> Vec<u64> {
        let dirty = if self.cfg.write_policy == WritePolicy::WriteBack {
            self.array.drain_dirty(self.epoch)
        } else {
            Vec::new()
        };
        self.stats.epoch_bumps += 1;
        if self.epoch >= EPOCH_MAX {
            self.array.reset();
            self.epoch = 0;
            self.stats.rollover_resets += 1;
        } else {
            self.epoch += 1;
        }
        dirty
    }

    /// The DRAM address inside the carve-out backing `line_addr`'s set,
    /// relative to the carve-out base. RDC sets are interleaved across all
    /// memory channels like any other address, so probes/fills spread over
    /// the full local HBM bandwidth.
    pub fn backing_offset(&self, line_addr: u64) -> u64 {
        let set = (line_addr / self.cfg.line_size) % self.array.sets();
        set * self.cfg.line_size
    }

    /// Current epoch value.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Activity counters.
    pub fn stats(&self) -> RdcStats {
        self.stats
    }

    /// Configured geometry.
    pub fn config(&self) -> RdcConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rdc() -> Rdc {
        Rdc::new(RdcConfig::new(64 * 128, 128))
    }

    #[test]
    fn probe_insert_probe() {
        let mut r = rdc();
        assert!(!r.probe(0x8000));
        r.insert(0x8000);
        assert!(r.probe(0x8000));
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
    }

    #[test]
    fn kernel_flush_invalidates_instantly() {
        let mut r = rdc();
        r.insert(0x100);
        assert!(r.probe(0x100));
        let dirty = r.kernel_boundary_flush();
        assert!(dirty.is_empty(), "write-through flush is free");
        assert!(!r.probe(0x100));
        assert_eq!(r.stats().stale_misses, 1);
        assert_eq!(r.epoch(), 1);
    }

    #[test]
    fn writeback_flush_returns_dirty_lines() {
        let mut r = Rdc::new(RdcConfig {
            capacity_bytes: 64 * 128,
            line_size: 128,
            write_policy: WritePolicy::WriteBack,
        });
        r.insert(0x100);
        r.insert(0x200);
        assert!(r.store(0x100));
        let dirty = r.kernel_boundary_flush();
        assert_eq!(dirty, vec![0x100]);
    }

    #[test]
    fn write_through_store_updates_resident_only() {
        let mut r = rdc();
        assert!(!r.store(0x300), "no resident copy to update");
        r.insert(0x300);
        assert!(r.store(0x300));
        assert_eq!(r.stats().store_updates, 1);
        // Write-through never leaves dirt behind.
        assert!(r.kernel_boundary_flush().is_empty());
    }

    #[test]
    fn invalidate_probe() {
        let mut r = rdc();
        r.insert(0x80);
        assert!(r.invalidate(0x80));
        assert!(!r.invalidate(0x80));
        assert!(!r.probe(0x80));
        assert_eq!(r.stats().invalidations, 1);
    }

    #[test]
    fn reinsert_after_flush_revives() {
        let mut r = rdc();
        r.insert(0x80);
        r.kernel_boundary_flush();
        r.insert(0x80);
        assert!(r.probe(0x80));
    }

    #[test]
    fn backing_offset_stays_in_carve_out() {
        let r = rdc();
        for addr in [0u64, 0x80, 64 * 128, 1 << 30] {
            let off = r.backing_offset(addr);
            assert!(off < r.config().capacity_bytes);
            assert_eq!(off % 128, 0);
        }
    }

    #[test]
    fn direct_mapped_conflicts_counted_by_alloy() {
        let mut r = rdc();
        let stride = 64 * 128u64;
        r.insert(0);
        r.insert(stride); // same set
        assert!(!r.probe(0));
        assert!(r.probe(stride));
    }

    #[test]
    fn probe_kind_distinguishes_stale_from_capacity() {
        let mut r = rdc();
        assert_eq!(r.probe_kind(0x80), ProbeKind::Miss);
        r.insert(0x80);
        assert_eq!(r.probe_kind(0x80), ProbeKind::Hit);
        r.kernel_boundary_flush();
        assert_eq!(r.probe_kind(0x80), ProbeKind::StaleEpoch);
        assert_eq!(r.stats().hits, 1);
        assert_eq!(r.stats().misses, 1);
        assert_eq!(r.stats().stale_misses, 1);
        assert!(ProbeKind::Hit.is_hit() && !ProbeKind::StaleEpoch.is_hit());
    }

    #[test]
    fn hit_rate_math() {
        let mut r = rdc();
        r.insert(0x80);
        r.probe(0x80);
        r.probe(0x10000);
        assert!((r.stats().hit_rate() - 0.5).abs() < 1e-12);
    }
}
