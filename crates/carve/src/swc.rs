//! Analytic kernel-launch-delay model for software coherence (Table IV).
//!
//! Software coherence requires, at every kernel boundary, (a) invalidating
//! cached data and (b) flushing dirty data toward its home. Table IV shows
//! why this is tolerable for an 8 MB on-chip L2 but catastrophic for a 2 GB
//! RDC — and how CARVE's architecture support (epoch-counter invalidation,
//! write-through RDC) drives both RDC costs to zero.

/// Worst-case kernel-boundary delays, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceDelays {
    /// Walk-and-invalidate the on-chip L2 (bank-parallel, 1 line/cycle).
    pub l2_invalidate_ns: f64,
    /// Flush all-dirty L2 over the slowest path (remote link).
    pub l2_flush_worst_ns: f64,
    /// Physically invalidate every RDC line (read+write local DRAM).
    pub rdc_invalidate_naive_ns: f64,
    /// Flush an all-dirty RDC over the inter-GPU link.
    pub rdc_flush_naive_ns: f64,
    /// RDC invalidation with epoch counters (instant).
    pub rdc_invalidate_epoch_ns: f64,
    /// RDC dirty flush with a write-through RDC (nothing to flush).
    pub rdc_flush_writethrough_ns: f64,
}

/// Computes Table IV for the given machine parameters.
///
/// * `l2_bytes` — on-chip LLC size per GPU (paper: 8 MB),
/// * `rdc_bytes` — RDC carve-out per GPU (paper: 2 GB),
/// * `line_size` — cache line size (128 B),
/// * `l2_banks` — parallel invalidation ports (paper: 16, 1 line/cycle),
/// * `freq_ghz` — core frequency,
/// * `local_gbs` — local HBM bandwidth (paper: 1 TB/s),
/// * `link_gbs` — inter-GPU link bandwidth (paper: 64 GB/s).
///
/// # Panics
///
/// Panics if any size, bandwidth or frequency is non-positive.
///
/// # Example
///
/// ```
/// use carve::coherence_delay_model;
/// let d = coherence_delay_model(8 << 20, 2 << 30, 128, 16, 1.0, 1000.0, 64.0);
/// // The paper's headline: ~2 ms to invalidate and ~32 ms to flush a 2 GB
/// // RDC naively, vs. microseconds for the on-chip L2.
/// assert!(d.rdc_flush_naive_ns > 3.0e7);
/// assert_eq!(d.rdc_invalidate_epoch_ns, 0.0);
/// ```
pub fn coherence_delay_model(
    l2_bytes: u64,
    rdc_bytes: u64,
    line_size: u64,
    l2_banks: u64,
    freq_ghz: f64,
    local_gbs: f64,
    link_gbs: f64,
) -> CoherenceDelays {
    assert!(l2_bytes > 0 && rdc_bytes > 0 && line_size > 0 && l2_banks > 0);
    assert!(freq_ghz > 0.0 && local_gbs > 0.0 && link_gbs > 0.0);
    let l2_lines = (l2_bytes / line_size) as f64;
    // 1 line per cycle per bank.
    let l2_invalidate_ns = l2_lines / l2_banks as f64 / freq_ghz;
    // All-dirty L2 flushed over the remote link (worst case in the paper's
    // 1024GB/s..64GB/s range — we report the link-bound end).
    let l2_flush_worst_ns = l2_bytes as f64 / link_gbs;
    // Naive RDC invalidation: read + write every line in local DRAM.
    let rdc_invalidate_naive_ns = 2.0 * rdc_bytes as f64 / local_gbs;
    // Naive RDC dirty flush: every line crosses the inter-GPU link.
    let rdc_flush_naive_ns = rdc_bytes as f64 / link_gbs;
    CoherenceDelays {
        l2_invalidate_ns,
        l2_flush_worst_ns,
        rdc_invalidate_naive_ns,
        rdc_flush_naive_ns,
        rdc_invalidate_epoch_ns: 0.0,
        rdc_flush_writethrough_ns: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> CoherenceDelays {
        coherence_delay_model(8 << 20, 2 << 30, 128, 16, 1.0, 1000.0, 64.0)
    }

    #[test]
    fn l2_invalidate_is_microseconds() {
        let d = paper();
        // Paper: "8MB, 16 bank, 1/cycle: 4us".
        assert!((d.l2_invalidate_ns - 4096.0).abs() < 1.0);
    }

    #[test]
    fn l2_flush_is_tens_of_microseconds() {
        let d = paper();
        // Paper range 8us..128us; link-bound end ~ 8MB/64GB/s = 131us.
        assert!(d.l2_flush_worst_ns > 100_000.0 && d.l2_flush_worst_ns < 200_000.0);
    }

    #[test]
    fn rdc_naive_costs_are_milliseconds() {
        let d = paper();
        // Paper: ~2ms invalidate (we model read+write ≈ 4ms worst case,
        // same order) and 32ms flush.
        assert!(d.rdc_invalidate_naive_ns > 1.0e6);
        assert!((d.rdc_flush_naive_ns - 3.355e7).abs() / 3.355e7 < 0.05);
    }

    #[test]
    fn architecture_support_zeroes_rdc_costs() {
        let d = paper();
        assert_eq!(d.rdc_invalidate_epoch_ns, 0.0);
        assert_eq!(d.rdc_flush_writethrough_ns, 0.0);
    }

    #[test]
    fn rdc_costs_scale_with_capacity() {
        let small = coherence_delay_model(8 << 20, 1 << 30, 128, 16, 1.0, 1000.0, 64.0);
        let large = coherence_delay_model(8 << 20, 4 << 30, 128, 16, 1.0, 1000.0, 64.0);
        assert!((large.rdc_flush_naive_ns / small.rdc_flush_naive_ns - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = coherence_delay_model(8 << 20, 2 << 30, 128, 16, 1.0, 0.0, 64.0);
    }
}
