//! The In-Memory Sharing Tracker (Figure 12).
//!
//! GPU-VI broadcasts a write-invalidate to every remote cache on *every*
//! store, which would swamp the inter-GPU links. The IMST is the paper's
//! filter: a 2-bit state per 128-byte line, stored in the spare ECC bits at
//! the line's *home node*, tracking the line's global sharing behaviour
//! beyond cache residency — `Uncached → Private → Read-Shared →
//! Read-Write-Shared`. Only writes to lines in the shared states broadcast
//! invalidates; private lines (the overwhelming majority at 128 B
//! granularity, per Figure 4) stay silent.
//!
//! Because the IMST is sticky, a line could stay read-write-shared forever;
//! the paper probabilistically (1%) downgrades to private on local writes
//! (after broadcasting) so phase changes are eventually re-learned.

use sim_core::rng::Stream;

/// Fixed 128-byte line granularity (`ScaledConfig` never scales
/// `line_size`; the IMST matches the paper's per-128B-line ECC storage).
const LINE_SHIFT: u32 = 7;
/// Lines per allocation chunk: 4096 lines = 512 KiB of address space per
/// 4 KiB chunk, so sparse footprints stay cheap while dense ones index
/// directly.
const CHUNK_LINES: usize = 4096;

/// Out-of-line so the 4 KiB array literal stays off the hot path's stack
/// frame (large frames cost a stack probe on every call).
#[cold]
#[inline(never)]
fn new_chunk() -> Box<[SharingState; CHUNK_LINES]> {
    Box::new([SharingState::Uncached; CHUNK_LINES])
}

/// Global sharing state of a cache line (2 bits at the home node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SharingState {
    /// Never accessed (or downgraded and not yet re-accessed).
    #[default]
    Uncached,
    /// Accessed only by the home GPU.
    Private,
    /// Read by at least one remote GPU, never written while shared.
    ReadShared,
    /// Read-write shared: remote copies may exist and writes occur.
    ReadWriteShared,
}

/// The decision the home memory controller takes on an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImstDecision {
    /// Whether a write-invalidate must be broadcast to remote caches.
    pub broadcast: bool,
    /// The state after the access.
    pub state: SharingState,
}

/// Per-home-node sharing tracker.
///
/// Stored as a flat array keyed by cache-line index (`line_addr / 128`),
/// chunked so untouched address ranges cost nothing — mirroring the
/// hardware, where the two state bits live in each line's spare ECC bits
/// and are indexed directly by line. Line addresses must be line-aligned
/// (every producer in the pipeline aligns them).
#[derive(Debug)]
pub struct Imst {
    chunks: Vec<Option<Box<[SharingState; CHUNK_LINES]>>>,
    downgrade_prob: f64,
    rng: Stream,
    broadcasts: u64,
    downgrades: u64,
}

impl Imst {
    /// Creates a tracker with the paper's 1% probabilistic downgrade.
    pub fn new(seed: u64) -> Imst {
        Imst::with_downgrade(seed, 0.01)
    }

    /// Creates a tracker with an explicit downgrade probability.
    ///
    /// # Panics
    ///
    /// Panics if `downgrade_prob` is outside `[0, 1]`.
    pub fn with_downgrade(seed: u64, downgrade_prob: f64) -> Imst {
        assert!((0.0..=1.0).contains(&downgrade_prob));
        Imst {
            chunks: Vec::new(),
            downgrade_prob,
            rng: Stream::from_parts(&[0x1357, seed]),
            broadcasts: 0,
            downgrades: 0,
        }
    }

    /// Mutable state slot for a line, materializing its chunk on first
    /// touch.
    #[inline]
    fn slot_mut(&mut self, line_addr: u64) -> &mut SharingState {
        let idx = (line_addr >> LINE_SHIFT) as usize;
        let (chunk, off) = (idx / CHUNK_LINES, idx % CHUNK_LINES);
        if chunk >= self.chunks.len() {
            self.chunks.resize_with(chunk + 1, || None);
        }
        let c = self.chunks[chunk].get_or_insert_with(new_chunk);
        &mut c[off]
    }

    /// Applies one access at the home node. `local` is true when the
    /// accessor is the home GPU itself.
    pub fn on_access(&mut self, line_addr: u64, local: bool, is_write: bool) -> ImstDecision {
        let before = *self.slot_mut(line_addr);
        // A write to a (potentially) remotely cached line must invalidate.
        let broadcast = is_write
            && matches!(
                before,
                SharingState::ReadShared | SharingState::ReadWriteShared
            );
        let after = match (before, local, is_write) {
            // First touches.
            (SharingState::Uncached, true, _) => SharingState::Private,
            (SharingState::Uncached, false, false) => SharingState::ReadShared,
            (SharingState::Uncached, false, true) => SharingState::ReadWriteShared,
            // Private lines escalate on remote access.
            (SharingState::Private, true, _) => SharingState::Private,
            (SharingState::Private, false, false) => SharingState::ReadShared,
            (SharingState::Private, false, true) => SharingState::ReadWriteShared,
            // Shared lines escalate on any write.
            (SharingState::ReadShared, _, false) => SharingState::ReadShared,
            (SharingState::ReadShared, _, true) => SharingState::ReadWriteShared,
            (SharingState::ReadWriteShared, _, _) => SharingState::ReadWriteShared,
        };
        let mut final_state = after;
        if broadcast {
            self.broadcasts += 1;
            // Probabilistic re-privatization on local writes, after the
            // invalidate has cleared remote copies.
            if local && self.rng.gen_bool(self.downgrade_prob) {
                final_state = SharingState::Private;
                self.downgrades += 1;
            }
        }
        *self.slot_mut(line_addr) = final_state;
        ImstDecision {
            broadcast,
            state: final_state,
        }
    }

    /// Current state of a line.
    pub fn state(&self, line_addr: u64) -> SharingState {
        let idx = (line_addr >> LINE_SHIFT) as usize;
        match self.chunks.get(idx / CHUNK_LINES) {
            Some(Some(c)) => c[idx % CHUNK_LINES],
            _ => SharingState::Uncached,
        }
    }

    /// Total write-invalidate broadcasts decided.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Total probabilistic downgrades to private.
    pub fn downgrades(&self) -> u64 {
        self.downgrades
    }

    /// Number of lines in each state `(uncached-is-absent, private,
    /// read-shared, rw-shared)`.
    pub fn state_counts(&self) -> (u64, u64, u64) {
        let mut p = 0;
        let mut rs = 0;
        let mut rw = 0;
        for s in self.chunks.iter().flatten().flat_map(|c| c.iter()) {
            match s {
                SharingState::Uncached => {}
                SharingState::Private => p += 1,
                SharingState::ReadShared => rs += 1,
                SharingState::ReadWriteShared => rw += 1,
            }
        }
        (p, rs, rw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_only_stays_private_and_silent() {
        let mut imst = Imst::new(0);
        for _ in 0..100 {
            let d = imst.on_access(0x80, true, true);
            assert!(!d.broadcast);
            assert_eq!(d.state, SharingState::Private);
        }
        assert_eq!(imst.broadcasts(), 0);
    }

    #[test]
    fn remote_read_makes_read_shared() {
        let mut imst = Imst::new(0);
        imst.on_access(0x80, true, false);
        let d = imst.on_access(0x80, false, false);
        assert_eq!(d.state, SharingState::ReadShared);
        assert!(!d.broadcast, "reads never broadcast");
    }

    #[test]
    fn write_to_read_shared_broadcasts() {
        let mut imst = Imst::new(0);
        imst.on_access(0x80, false, false); // remote read
        let d = imst.on_access(0x80, true, true); // home write
        assert!(d.broadcast);
        assert!(matches!(
            d.state,
            SharingState::ReadWriteShared | SharingState::Private
        ));
    }

    #[test]
    fn remote_write_to_private_escalates_without_broadcast() {
        // No remote copies can exist while private, so no invalidate is
        // needed; the state still escalates.
        let mut imst = Imst::new(0);
        imst.on_access(0x80, true, false);
        let d = imst.on_access(0x80, false, true);
        assert!(!d.broadcast);
        assert_eq!(d.state, SharingState::ReadWriteShared);
    }

    #[test]
    fn rw_shared_writes_keep_broadcasting() {
        let mut imst = Imst::with_downgrade(0, 0.0);
        imst.on_access(0x80, false, false);
        imst.on_access(0x80, true, true);
        let d = imst.on_access(0x80, false, true);
        assert!(d.broadcast);
        assert_eq!(imst.broadcasts(), 2);
    }

    #[test]
    fn downgrade_eventually_reprivatizes() {
        let mut imst = Imst::with_downgrade(7, 0.5);
        imst.on_access(0x80, false, false); // shared
        let mut downgraded = false;
        for _ in 0..64 {
            let d = imst.on_access(0x80, true, true);
            if d.state == SharingState::Private {
                downgraded = true;
                break;
            }
            // Re-share so the next write still broadcasts.
            imst.on_access(0x80, false, false);
        }
        assert!(downgraded, "50% downgrade never fired in 64 tries");
        assert!(imst.downgrades() >= 1);
    }

    #[test]
    fn zero_downgrade_probability_is_sticky() {
        let mut imst = Imst::with_downgrade(0, 0.0);
        imst.on_access(0x80, false, false);
        for _ in 0..100 {
            imst.on_access(0x80, true, true);
        }
        assert_eq!(imst.state(0x80), SharingState::ReadWriteShared);
        assert_eq!(imst.downgrades(), 0);
    }

    #[test]
    fn state_counts_tally() {
        let mut imst = Imst::new(0);
        imst.on_access(0x0, true, false); // private
        imst.on_access(0x80, false, false); // read-shared
        imst.on_access(0x100, false, false);
        imst.on_access(0x100, true, true); // rw-shared (broadcast)
        let (p, rs, rw) = imst.state_counts();
        assert_eq!(p, 1);
        assert!(rs == 1 || rs == 2, "downgrade may re-privatize");
        assert!(rw <= 1);
        let _ = rw;
    }
}
