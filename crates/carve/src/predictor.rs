//! RDC hit predictor.
//!
//! The paper observes that latency-sensitive, low-locality workloads
//! (RandAccess) can *lose* performance with CARVE: a remote access first
//! pays the RDC probe (a local DRAM access) and only then goes remote. A
//! low-overhead hit predictor — in the spirit of Alloy Cache's MAP-I —
//! steers such accesses: predicted misses launch the remote fetch in
//! parallel with (or instead of waiting on) the probe.
//!
//! The predictor is a table of saturating 2-bit counters indexed by a
//! hashed region of the address.

/// A table of 2-bit saturating counters predicting RDC hits.
///
/// # Example
///
/// ```
/// use carve::HitPredictor;
/// let mut p = HitPredictor::new(256);
/// // Fresh predictor is pessimistic: predicts miss.
/// assert!(!p.predict(0x80));
/// p.update(0x80, true);
/// p.update(0x80, true);
/// assert!(p.predict(0x80));
/// ```
#[derive(Debug, Clone)]
pub struct HitPredictor {
    counters: Vec<u8>,
    correct: u64,
    wrong: u64,
}

impl HitPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> HitPredictor {
        assert!(entries > 0 && entries.is_power_of_two());
        HitPredictor {
            counters: vec![1; entries], // weakly-miss
            correct: 0,
            wrong: 0,
        }
    }

    #[inline]
    fn index(&self, line_addr: u64) -> usize {
        // Hash a coarse region (4 KB) so streaming neighbours share state.
        let region = line_addr >> 12;
        let h = region.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        (h as usize) & (self.counters.len() - 1)
    }

    /// Predicts whether `line_addr` will hit in the RDC.
    pub fn predict(&self, line_addr: u64) -> bool {
        self.counters[self.index(line_addr)] >= 2
    }

    /// Trains with the actual outcome and tracks accuracy.
    pub fn update(&mut self, line_addr: u64, hit: bool) {
        let predicted = self.predict(line_addr);
        if predicted == hit {
            self.correct += 1;
        } else {
            self.wrong += 1;
        }
        let idx = self.index(line_addr);
        let c = &mut self.counters[idx];
        if hit {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Fraction of predictions that matched reality.
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.wrong;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_hits_and_misses() {
        let mut p = HitPredictor::new(64);
        for _ in 0..4 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        for _ in 0..4 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn accuracy_tracks_training() {
        let mut p = HitPredictor::new(64);
        for _ in 0..100 {
            p.update(0x2000, false);
        }
        assert!(p.accuracy() > 0.9);
    }

    #[test]
    fn region_hashing_groups_neighbours() {
        let mut p = HitPredictor::new(64);
        for _ in 0..4 {
            p.update(0x3000, true);
        }
        // Same 4KB region => same counter.
        assert!(p.predict(0x3000 + 128));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = HitPredictor::new(100);
    }
}
