//! Directory-based hardware coherence (the paper's Section V-E).
//!
//! GPU-VI + IMST is directory-*less*: a write to a shared line invalidates
//! every other node, which the paper notes "can incur significant network
//! traffic overhead for large multi-node systems that experience frequent
//! read-write sharing", pointing at directory-based schemes (CANDY, C3D)
//! as the scalable alternative. This module provides that alternative: a
//! per-home-node [`Directory`] tracking which GPUs actually hold a copy of
//! each line, so write-invalidates go only to true sharers.
//!
//! The trade-off mirrors the literature: the directory eliminates
//! broadcast fan-out (messages scale with sharers, not node count) but
//! needs storage per tracked line and must be told about evictions to stay
//! precise (untold evictions cost spurious invalidates, not correctness —
//! invalidating an absent line is a no-op).

use sim_core::fast::FastMap;

/// Sharer bitmask per line at one home node.
#[derive(Debug, Default)]
pub struct Directory {
    sharers: FastMap<u64>,
    invalidates_sent: u64,
    spurious_avoided: u64,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Records that `gpu` fetched a copy of `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `gpu >= 64`.
    pub fn record_sharer(&mut self, line_addr: u64, gpu: usize) {
        assert!(gpu < 64, "directory tracks at most 64 nodes");
        *self.sharers.get_or_insert_with(line_addr, u64::default) |= 1 << gpu;
    }

    /// Records that `gpu` dropped its copy (eviction notification).
    pub fn drop_sharer(&mut self, line_addr: u64, gpu: usize) {
        if let Some(mask) = self.sharers.get_mut(line_addr) {
            *mask &= !(1 << gpu);
            if *mask == 0 {
                self.sharers.remove(line_addr);
            }
        }
    }

    /// A write by `writer`: returns the exact set of other GPUs holding a
    /// copy (to invalidate) and clears them from the directory.
    pub fn on_write(&mut self, line_addr: u64, writer: usize) -> Vec<usize> {
        let Some(mask) = self.sharers.get_mut(line_addr) else {
            self.spurious_avoided += 1;
            return Vec::new();
        };
        let mut targets = Vec::new();
        let mut rest = *mask & !(1u64 << writer);
        while rest != 0 {
            targets.push(rest.trailing_zeros() as usize);
            rest &= rest - 1;
        }
        // Only the writer's copy (if any) survives.
        *mask &= 1 << writer;
        if *mask == 0 {
            self.sharers.remove(line_addr);
        }
        self.invalidates_sent += targets.len() as u64;
        targets
    }

    /// Whether `gpu` is currently recorded as holding a copy of
    /// `line_addr` (read-only, for shadow checkers).
    pub fn has_sharer(&self, line_addr: u64, gpu: usize) -> bool {
        self.sharers
            .get(line_addr)
            .is_some_and(|m| m & (1 << gpu) != 0)
    }

    /// Number of sharers currently recorded for a line.
    pub fn sharer_count(&self, line_addr: u64) -> u32 {
        self.sharers
            .get(line_addr)
            .map(|m| m.count_ones())
            .unwrap_or(0)
    }

    /// Lines with at least one recorded sharer (directory storage
    /// pressure).
    pub fn tracked_lines(&self) -> usize {
        self.sharers.len()
    }

    /// Total targeted invalidates decided.
    pub fn invalidates_sent(&self) -> u64 {
        self.invalidates_sent
    }

    /// Writes that found no sharers at all (a broadcast scheme would have
    /// invalidated `nodes - 1` caches for each of these).
    pub fn spurious_avoided(&self) -> u64 {
        self.spurious_avoided
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidates_exactly_the_sharers() {
        let mut d = Directory::new();
        d.record_sharer(0x80, 1);
        d.record_sharer(0x80, 3);
        let targets = d.on_write(0x80, 0);
        assert_eq!(targets, vec![1, 3]);
        assert_eq!(d.invalidates_sent(), 2);
        // Sharers cleared: a second write invalidates no one.
        assert!(d.on_write(0x80, 0).is_empty());
    }

    #[test]
    fn writer_keeps_its_own_copy() {
        let mut d = Directory::new();
        d.record_sharer(0x80, 2);
        d.record_sharer(0x80, 1);
        let targets = d.on_write(0x80, 2);
        assert_eq!(targets, vec![1]);
        assert_eq!(d.sharer_count(0x80), 1, "writer's copy survives");
    }

    #[test]
    fn eviction_notification_prunes() {
        let mut d = Directory::new();
        d.record_sharer(0x80, 1);
        d.drop_sharer(0x80, 1);
        assert_eq!(d.tracked_lines(), 0);
        assert!(d.on_write(0x80, 0).is_empty());
        assert_eq!(d.spurious_avoided(), 1);
    }

    #[test]
    fn unknown_lines_cost_nothing() {
        let mut d = Directory::new();
        assert!(d.on_write(0xDEAD, 0).is_empty());
        assert_eq!(d.sharer_count(0xDEAD), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn sharer_bounds_checked() {
        Directory::new().record_sharer(0, 64);
    }
}
