//! The three RDC coherence designs of Figure 11, bundled per system.

use crate::directory::Directory;
use crate::imst::{Imst, ImstDecision};
use crate::rdc::{Rdc, RdcConfig};

/// How RDC coherence is maintained across GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherencePolicy {
    /// Zero-overhead coherence: the upper bound (CARVE-No-Coherence).
    /// RDC contents survive kernel boundaries and writes never invalidate.
    NoCoherence,
    /// Software coherence (CARVE-SWC): the RDC epoch is bumped at every
    /// kernel boundary, instantly invalidating all remote data.
    Software,
    /// Hardware coherence (CARVE-HWC): directory-less GPU-VI write
    /// invalidation, filtered by the per-home-node IMST. RDC contents
    /// survive kernel boundaries.
    Hardware,
}

/// All CARVE state for one multi-GPU system: one RDC per GPU plus one IMST
/// per home node.
#[derive(Debug)]
pub struct Carve {
    policy: CoherencePolicy,
    rdcs: Vec<Rdc>,
    imsts: Vec<Imst>,
    broadcast_always: bool,
    directories: Option<Vec<Directory>>,
}

impl Carve {
    /// Creates CARVE state for `num_gpus` GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus` is zero.
    pub fn new(num_gpus: usize, policy: CoherencePolicy, rdc_cfg: RdcConfig) -> Carve {
        assert!(num_gpus > 0);
        Carve {
            policy,
            rdcs: (0..num_gpus).map(|_| Rdc::new(rdc_cfg)).collect(),
            imsts: (0..num_gpus).map(|g| Imst::new(g as u64)).collect(),
            broadcast_always: false,
            directories: None,
        }
    }

    /// Switches hardware coherence from directory-less GPU-VI broadcast to
    /// a per-home sharer directory (the paper's Section V-E alternative
    /// for larger node counts): write-invalidates target exactly the GPUs
    /// recorded as holding a copy.
    pub fn set_directory_mode(&mut self, on: bool) {
        if on && self.directories.is_none() {
            self.directories = Some((0..self.rdcs.len()).map(|_| Directory::new()).collect());
        } else if !on {
            self.directories = None;
        }
    }

    /// Whether directory mode is active.
    pub fn directory_mode(&self) -> bool {
        self.directories.is_some()
    }

    /// Disables the IMST write-invalidate filter: every write broadcasts,
    /// as in raw GPU-VI (ablation of the paper's Figure 12 optimization).
    pub fn set_broadcast_always(&mut self, on: bool) {
        self.broadcast_always = on;
    }

    /// The coherence policy in force.
    pub fn policy(&self) -> CoherencePolicy {
        self.policy
    }

    /// GPU `g`'s Remote Data Cache.
    pub fn rdc_mut(&mut self, g: usize) -> &mut Rdc {
        &mut self.rdcs[g]
    }

    /// GPU `g`'s Remote Data Cache (read-only).
    pub fn rdc(&self, g: usize) -> &Rdc {
        &self.rdcs[g]
    }

    /// Home node `g`'s sharing tracker.
    pub fn imst_mut(&mut self, g: usize) -> &mut Imst {
        &mut self.imsts[g]
    }

    /// Home node `g`'s sharing tracker (read-only, for shadow checkers).
    pub fn imst(&self, g: usize) -> &Imst {
        &self.imsts[g]
    }

    /// Home node `g`'s directory (read-only), when directory mode is on.
    pub fn directory(&self, g: usize) -> Option<&Directory> {
        self.directories.as_ref().map(|d| &d[g])
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.rdcs.len()
    }

    /// Kernel-boundary handling. Under software coherence every RDC epoch
    /// is bumped (instant invalidation) and any write-back dirty lines are
    /// returned per GPU for flushing; other policies retain RDC contents
    /// and return empty lists.
    pub fn on_kernel_boundary(&mut self) -> Vec<Vec<u64>> {
        match self.policy {
            CoherencePolicy::Software => self
                .rdcs
                .iter_mut()
                .map(Rdc::kernel_boundary_flush)
                .collect(),
            CoherencePolicy::NoCoherence | CoherencePolicy::Hardware => {
                vec![Vec::new(); self.rdcs.len()]
            }
        }
    }

    /// A write observed at `home` for `line_addr`, issued by `writer`.
    /// Under hardware coherence the home IMST decides whether remote
    /// caches must be invalidated; the returned list names the GPUs to
    /// probe (every GPU except the writer).
    pub fn on_home_write(&mut self, home: usize, line_addr: u64, writer: usize) -> Vec<usize> {
        if self.policy != CoherencePolicy::Hardware {
            return Vec::new();
        }
        // The IMST is trained in every mode (its two state bits are free
        // metadata in the spare ECC space), keeping statistics comparable.
        let decision: ImstDecision = self.imsts[home].on_access(line_addr, home == writer, true);
        if let Some(dirs) = self.directories.as_mut() {
            return dirs[home].on_write(line_addr, writer);
        }
        if decision.broadcast || self.broadcast_always {
            (0..self.rdcs.len()).filter(|&g| g != writer).collect()
        } else {
            Vec::new()
        }
    }

    /// A read observed at `home` for `line_addr` by `reader` (trains the
    /// IMST under hardware coherence).
    pub fn on_home_read(&mut self, home: usize, line_addr: u64, reader: usize) {
        if self.policy == CoherencePolicy::Hardware {
            self.imsts[home].on_access(line_addr, home == reader, false);
            if reader != home {
                if let Some(dirs) = self.directories.as_mut() {
                    dirs[home].record_sharer(line_addr, reader);
                }
            }
        }
    }

    /// Total write-invalidate broadcasts across all home nodes.
    pub fn total_broadcasts(&self) -> u64 {
        self.imsts.iter().map(Imst::broadcasts).sum()
    }

    /// Total *targeted* invalidate messages under directory mode.
    pub fn total_directory_invalidates(&self) -> u64 {
        self.directories
            .as_ref()
            .map(|d| d.iter().map(Directory::invalidates_sent).sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn carve(policy: CoherencePolicy) -> Carve {
        Carve::new(4, policy, RdcConfig::new(64 * 128, 128))
    }

    #[test]
    fn swc_flushes_all_rdcs_at_boundary() {
        let mut c = carve(CoherencePolicy::Software);
        c.rdc_mut(0).insert(0x80);
        c.rdc_mut(2).insert(0x100);
        c.on_kernel_boundary();
        assert!(!c.rdc_mut(0).probe(0x80));
        assert!(!c.rdc_mut(2).probe(0x100));
    }

    #[test]
    fn hwc_and_nc_retain_rdc_across_boundaries() {
        for policy in [CoherencePolicy::Hardware, CoherencePolicy::NoCoherence] {
            let mut c = carve(policy);
            c.rdc_mut(1).insert(0x200);
            c.on_kernel_boundary();
            assert!(c.rdc_mut(1).probe(0x200), "{policy:?} must retain data");
        }
    }

    #[test]
    fn hwc_broadcasts_on_shared_write() {
        let mut c = carve(CoherencePolicy::Hardware);
        // GPU 2 reads a line homed at GPU 0: IMST learns read-shared.
        c.on_home_read(0, 0x80, 2);
        // GPU 0 then writes its own line: invalidate GPUs 1..3.
        let targets = c.on_home_write(0, 0x80, 0);
        assert_eq!(targets, vec![1, 2, 3]);
        assert_eq!(c.total_broadcasts(), 1);
    }

    #[test]
    fn hwc_private_writes_stay_silent() {
        let mut c = carve(CoherencePolicy::Hardware);
        c.on_home_read(0, 0x80, 0); // local read: private
        assert!(c.on_home_write(0, 0x80, 0).is_empty());
        assert_eq!(c.total_broadcasts(), 0);
    }

    #[test]
    fn nc_and_swc_never_broadcast() {
        for policy in [CoherencePolicy::NoCoherence, CoherencePolicy::Software] {
            let mut c = carve(policy);
            c.on_home_read(0, 0x80, 2);
            assert!(c.on_home_write(0, 0x80, 1).is_empty(), "{policy:?}");
        }
    }

    #[test]
    fn writer_excluded_from_broadcast() {
        let mut c = carve(CoherencePolicy::Hardware);
        c.on_home_read(1, 0x80, 3);
        let targets = c.on_home_write(1, 0x80, 3);
        assert_eq!(targets, vec![0, 1, 2]);
    }
}
