//! Property-based tests over core data structures and invariants, using
//! random operation sequences drawn from the simulator's own deterministic
//! PRNG ([`sim_core::rng::Stream`]). Each property samples many random
//! cases per run; seeds are fixed so failures reproduce exactly.

use carve::{Imst, Rdc, RdcConfig, SharingState};
use carve_cache::alloy::{AlloyCache, AlloyProbe};
use carve_cache::mshr::{MshrAllocate, MshrFile};
use carve_cache::sram::{AccessKind, SetAssocCache};
use carve_runtime::page_table::{PageTable, PlacementPolicy, Replication};
use carve_runtime::sched::{cta_range_of_gpu, gpu_of_cta};
use carve_runtime::sharing::SharingProfile;
use carve_system::sim::{run_with_profile_mode, EngineMode};
use carve_system::{workloads, Design, ScaledConfig, SimConfig};
use carve_trace::{Op, WorkloadSpec};
use sim_core::rng::Stream;
use sim_core::{BoundedQueue, Cycle};

/// Runs `cases` random trials of `prop`, each fed an independent stream
/// derived from `seed` so any failing case is reproducible by index.
fn for_cases(seed: u64, cases: u64, mut prop: impl FnMut(&mut Stream)) {
    for case in 0..cases {
        let mut s = Stream::from_parts(&[seed, case]);
        prop(&mut s);
    }
}

/// A bounded queue never exceeds capacity and preserves FIFO order.
#[test]
fn queue_respects_capacity_and_order() {
    for_cases(0xB0DE, 64, |s| {
        let cap = s.gen_range(1, 32) as usize;
        let n_ops = s.gen_range(1, 200);
        let mut q = BoundedQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        let mut next = 0u32;
        for _ in 0..n_ops {
            if s.gen_bool(0.5) {
                let accepted = q.try_push(next).is_ok();
                assert_eq!(accepted, model.len() < cap);
                if accepted {
                    model.push_back(next);
                }
                next += 1;
            } else {
                assert_eq!(q.pop(), model.pop_front());
            }
            assert_eq!(q.len(), model.len());
            assert!(q.len() <= cap);
        }
    });
}

/// After any fill sequence, a cache probe for the most recently filled
/// line always hits, and occupancy never exceeds geometry.
#[test]
fn cache_fill_then_probe_hits() {
    for_cases(0xCAFE, 48, |s| {
        let mut c = SetAssocCache::new(8 * 1024, 4, 128);
        for _ in 0..s.gen_range(1, 300) {
            let addr = s.gen_range(0, 1 << 20);
            c.fill(addr, false);
            assert!(c.contains(addr));
        }
        assert!(c.occupancy() <= 64); // 8KB / 128B
    });
}

/// Probing with writes then invalidating reports dirty exactly when a
/// write happened since the fill.
#[test]
fn cache_dirty_tracking() {
    for_cases(0xD1B7, 48, |s| {
        let mut c = SetAssocCache::new(4096, 4, 128);
        for i in 0..s.gen_range(1, 50) {
            let w = s.gen_bool(0.5);
            let addr = i * 128;
            c.fill(addr, false);
            if w {
                c.probe(addr, AccessKind::Write);
            }
            // Same-set fills may have evicted it; only check if present.
            if c.contains(addr) {
                assert_eq!(c.invalidate(addr), Some(w));
            }
        }
    });
}

/// The Alloy array holds at most one line per set and a probe after
/// insert under the same epoch always hits.
#[test]
fn alloy_insert_probe_consistency() {
    for_cases(0xA110, 48, |s| {
        let epoch = s.gen_range(0, 100) as u32;
        let mut a = AlloyCache::new(32 * 128, 128);
        for _ in 0..s.gen_range(1, 200) {
            let addr = s.gen_range(0, 4096) * 128;
            a.insert(addr, epoch);
            assert_eq!(a.probe(addr, epoch), AlloyProbe::Hit);
            assert_ne!(a.probe(addr, epoch + 1), AlloyProbe::Hit);
        }
    });
}

/// MSHR merging: completion returns exactly the allocated waiters.
#[test]
fn mshr_waiters_conserved() {
    for_cases(0x3140, 64, |s| {
        let mut m: MshrFile<u64> = MshrFile::new(64, 64);
        let line = 0x100;
        let mut accepted = Vec::new();
        for _ in 0..s.gen_range(1, 40) {
            let w = s.gen_range(0, 64);
            match m.allocate(line, w) {
                MshrAllocate::Primary | MshrAllocate::Secondary => accepted.push(w),
                MshrAllocate::Full => {}
            }
        }
        let completed = m.complete(line);
        assert_eq!(completed, accepted);
        assert!(m.is_empty());
    });
}

/// IMST: broadcasts happen only on writes, and only when the line was
/// in a shared state.
#[test]
fn imst_broadcast_only_on_shared_writes() {
    for_cases(0x1357, 64, |s| {
        let mut imst = Imst::with_downgrade(1, 0.0);
        let mut prev = SharingState::Uncached;
        for _ in 0..s.gen_range(1, 200) {
            let local = s.gen_bool(0.5);
            let is_write = s.gen_bool(0.5);
            let d = imst.on_access(0x80, local, is_write);
            let was_shared = matches!(
                prev,
                SharingState::ReadShared | SharingState::ReadWriteShared
            );
            assert_eq!(d.broadcast, is_write && was_shared);
            prev = d.state;
        }
    });
}

/// RDC epoch flushes always empty the cache logically; re-inserting
/// restores hits.
#[test]
fn rdc_flush_cycle() {
    for_cases(0xF1A5, 48, |s| {
        let lines: Vec<u64> = (0..s.gen_range(1, 64))
            .map(|_| s.gen_range(0, 256))
            .collect();
        let mut rdc = Rdc::new(RdcConfig::new(64 * 128, 128));
        for l in &lines {
            rdc.insert(l * 128);
        }
        rdc.kernel_boundary_flush();
        for l in &lines {
            assert!(!rdc.probe(l * 128), "line {l} survived the flush");
        }
        for l in &lines {
            rdc.insert(l * 128);
            assert!(rdc.probe(l * 128));
        }
    });
}

/// CTA scheduling: assignment and ranges agree, cover every CTA once.
#[test]
fn scheduling_is_a_partition() {
    for_cases(0x5C4E, 64, |s| {
        let ctas = s.gen_range(1, 300) as usize;
        let gpus = s.gen_range(1, 9) as usize;
        let mut seen = vec![false; ctas];
        for g in 0..gpus {
            let (start, end) = cta_range_of_gpu(g, ctas, gpus);
            for (cta, seen_slot) in seen.iter_mut().enumerate().take(end).skip(start) {
                assert!(!*seen_slot, "cta {cta} assigned twice");
                *seen_slot = true;
                assert_eq!(gpu_of_cta(cta, ctas, gpus), g);
            }
        }
        assert!(seen.into_iter().all(|x| x));
    });
}

/// First-touch: the first accessor owns the page; later accessors see
/// remote exactly when they differ from the owner (no replication).
#[test]
fn first_touch_ownership() {
    for_cases(0xF157, 48, |s| {
        let mut pt = PageTable::new(4, 8192, PlacementPolicy::default());
        let mut owner: std::collections::HashMap<u64, usize> = Default::default();
        for i in 0..s.gen_range(1, 200) {
            let gpu = s.gen_range(0, 4) as usize;
            let page = s.gen_range(0, 64);
            let w = s.gen_bool(0.5);
            let out = pt.access(gpu, page * 8192, w, Cycle(i));
            let own = *owner.entry(page).or_insert(gpu);
            assert_eq!(out.home, carve_runtime::NodeId::Gpu(own));
            assert_eq!(out.remote, own != gpu);
        }
    });
}

/// All-shared replication localizes every access, regardless of order.
#[test]
fn ideal_replication_is_always_local() {
    for_cases(0x1DEA, 48, |s| {
        let mut pt = PageTable::new(
            4,
            8192,
            PlacementPolicy {
                replication: Replication::AllShared,
                ..Default::default()
            },
        );
        pt.set_replicated_pages(0..16u64);
        for i in 0..s.gen_range(1, 100) {
            let gpu = s.gen_range(0, 4) as usize;
            let page = s.gen_range(0, 16);
            let w = s.gen_bool(0.5);
            let out = pt.access(gpu, page * 8192, w, Cycle(i));
            assert!(!out.remote);
        }
    });
}

/// Sharing classification fractions always sum to 1 over any trace.
#[test]
fn sharing_fractions_partition() {
    for_cases(0x54A2, 32, |s| {
        let mut p = SharingProfile::new(8192, 128);
        for _ in 0..s.gen_range(1, 500) {
            let gpu = s.gen_range(0, 4) as usize;
            let line = s.gen_range(0, 2048);
            p.record(gpu, line * 128, s.gen_bool(0.5));
        }
        for b in [p.page_breakdown(), p.line_breakdown()] {
            let (a, r, w) = b.fractions();
            assert!((a + r + w - 1.0).abs() < 1e-9);
            assert_eq!(b.total_accesses(), p.line_breakdown().total_accesses());
        }
    });
}

/// Deterministic PRNG streams: same key, same sequence; keys derived
/// from different parts never collide in their first draws.
#[test]
fn rng_streams_deterministic() {
    for_cases(0x2265, 64, |s| {
        let seed = s.next_u64();
        let k1 = s.next_u64();
        let k2 = s.next_u64();
        let mut a = Stream::from_parts(&[seed, k1]);
        let mut b = Stream::from_parts(&[seed, k1]);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        if k1 != k2 {
            let mut c = Stream::from_parts(&[seed, k2]);
            let differs = (0..4).any(|_| a.next_u64() != c.next_u64());
            assert!(differs);
        }
    });
}

/// Warp streams never escape the workload's address layout and always
/// retire exactly the configured instruction budget — for random
/// (kernel, cta, warp) coordinates of random workloads.
#[test]
fn warp_streams_bounded_and_exact() {
    for_cases(0x3A97, 8, |s| {
        let cfg = ScaledConfig::default();
        let wl = s.gen_range(0, 20) as usize;
        let spec = &workloads::all()[wl];
        let kernel = s.gen_range(0, 4) as usize % spec.shape.kernels;
        let cta = s.gen_range(0, 128) as usize;
        let warp = s.gen_range(0, 4) as usize;
        let layout = spec.layout(&cfg);
        let mut gen = spec.warp_gen(&cfg, kernel, cta, warp);
        let mut total = 0u64;
        while let Some(op) = gen.next_op() {
            match op {
                Op::Compute(n) => total += n as u64,
                Op::Load(va) | Op::Store(va) => {
                    total += 1;
                    assert!(va < layout.total_bytes());
                    assert_eq!(va % cfg.line_size, 0);
                }
            }
        }
        assert_eq!(total, spec.shape.instrs_per_warp as u64);
    });
}

// ---------------------------------------------------------------------------
// Event-skipping engine equivalence.

fn quick_spec(name: &str) -> WorkloadSpec {
    let mut spec = workloads::by_name(name).expect("known workload");
    spec.shape.kernels = spec.shape.kernels.min(3);
    spec.shape.ctas = 16;
    spec.shape.instrs_per_warp = 60;
    spec
}

fn quick_sim(design: Design) -> SimConfig {
    let cfg = ScaledConfig {
        sms_per_gpu: 2,
        warps_per_sm: 8,
        ..ScaledConfig::default()
    };
    SimConfig::with_cfg(design, cfg)
}

/// The event-horizon engine must be cycle-for-cycle identical to the
/// step-by-1 engine: same final cycle count and same value for every
/// counter the figures plot, across workloads and designs.
#[test]
fn event_skipping_engine_matches_stepping_engine() {
    for name in ["Lulesh", "stream-triad", "SSSP"] {
        for design in [Design::NumaGpu, Design::CarveHwc, Design::NumaGpuMigrate] {
            let spec = quick_spec(name);
            let sim = quick_sim(design);
            let skip = run_with_profile_mode(&spec, &sim, None, EngineMode::EventSkip);
            let step = run_with_profile_mode(&spec, &sim, None, EngineMode::Step);
            let ctx = format!("{name} under {}", design.label());
            assert!(step.completed && skip.completed, "{ctx}: hit cycle cap");
            assert_eq!(skip.cycles, step.cycles, "{ctx}: cycles diverge");
            assert_eq!(skip.instructions, step.instructions, "{ctx}: instructions");
            assert_eq!(skip.local_serviced, step.local_serviced, "{ctx}: local");
            assert_eq!(skip.remote_serviced, step.remote_serviced, "{ctx}: remote");
            assert_eq!(skip.cpu_serviced, step.cpu_serviced, "{ctx}: cpu");
            assert_eq!(skip.rdc.hits, step.rdc.hits, "{ctx}: rdc hits");
            assert_eq!(skip.rdc.misses, step.rdc.misses, "{ctx}: rdc misses");
            assert_eq!(skip.link_bytes, step.link_bytes, "{ctx}: link bytes");
            assert_eq!(skip.migrations, step.migrations, "{ctx}: migrations");
            assert_eq!(skip.broadcasts, step.broadcasts, "{ctx}: broadcasts");
            assert_eq!(skip.l2_hits, step.l2_hits, "{ctx}: l2 hits");
            assert_eq!(skip.l2_misses, step.l2_misses, "{ctx}: l2 misses");
            assert_eq!(
                skip.read_latency.count(),
                step.read_latency.count(),
                "{ctx}: read-latency count"
            );
            assert_eq!(
                skip.read_latency.min(),
                step.read_latency.min(),
                "{ctx}: read-latency min"
            );
            assert_eq!(
                skip.read_latency.max(),
                step.read_latency.max(),
                "{ctx}: read-latency max"
            );
        }
    }
}
