//! Cross-crate integration tests: full system runs exercising every layer
//! (trace generation → runtime placement → GPU cores → DRAM/links → CARVE)
//! and checking end-to-end invariants the figures depend on.

use carve_system::{
    profile_workload, run, run_with_profile, workloads, Design, ScaledConfig, SimConfig,
};
use carve_trace::WorkloadSpec;

/// A shrunken workload so each test run takes well under a second.
fn tiny(name: &str) -> WorkloadSpec {
    let mut spec = workloads::by_name(name).expect("known workload");
    spec.shape.kernels = spec.shape.kernels.min(3);
    spec.shape.ctas = 16;
    spec.shape.instrs_per_warp = 50;
    spec
}

fn tiny_cfg() -> ScaledConfig {
    ScaledConfig {
        sms_per_gpu: 2,
        warps_per_sm: 8,
        ..ScaledConfig::default()
    }
}

fn tiny_sim(design: Design) -> SimConfig {
    SimConfig::with_cfg(design, tiny_cfg())
}

#[test]
fn every_workload_completes_under_the_baseline() {
    for spec in workloads::all() {
        let mut spec = spec;
        spec.shape.kernels = 2;
        spec.shape.ctas = 16;
        spec.shape.instrs_per_warp = 40;
        let r = run(&spec, &tiny_sim(Design::NumaGpu));
        assert!(r.completed, "{} hit the cycle cap", spec.name);
        assert_eq!(
            r.instructions,
            spec.shape.total_instrs(),
            "{} lost instructions",
            spec.name
        );
    }
}

#[test]
fn all_designs_retire_identical_instruction_counts() {
    let spec = tiny("SSSP");
    let expected = spec.shape.total_instrs();
    for design in Design::all() {
        let r = run(&spec, &tiny_sim(design));
        assert!(r.completed, "{:?}", design);
        assert_eq!(r.instructions, expected, "{:?}", design);
    }
}

#[test]
fn design_performance_ordering_holds() {
    // The paper's central ordering on a NUMA-sensitive stencil workload:
    // ideal >= CARVE-NC >= CARVE-HWC >= CARVE-SWC-ish >= NUMA-GPU,
    // with a little slack for simulation noise.
    let spec = tiny("Euler");
    let base = run(&spec, &tiny_sim(Design::NumaGpu)).cycles as f64;
    let ideal = run(&spec, &tiny_sim(Design::Ideal)).cycles as f64;
    let nc = run(&spec, &tiny_sim(Design::CarveNc)).cycles as f64;
    let hwc = run(&spec, &tiny_sim(Design::CarveHwc)).cycles as f64;
    assert!(ideal <= nc * 1.02, "ideal {ideal} vs NC {nc}");
    assert!(nc <= hwc * 1.05, "NC {nc} vs HWC {hwc}");
    assert!(hwc < base, "CARVE-HWC {hwc} must beat baseline {base}");
    assert!(ideal < base, "ideal {ideal} must beat baseline {base}");
}

#[test]
fn carve_moves_traffic_from_links_to_local_dram() {
    let spec = tiny("Lulesh");
    let base = run(&spec, &tiny_sim(Design::NumaGpu));
    let carve = run(&spec, &tiny_sim(Design::CarveHwc));
    assert!(carve.link_bytes < base.link_bytes);
    assert!(carve.rdc.insertions > 0);
    assert!(carve.remote_fraction() < base.remote_fraction());
}

#[test]
fn software_coherence_flushes_show_up_as_stale_misses() {
    let spec = tiny("Lulesh");
    let swc = run(&spec, &tiny_sim(Design::CarveSwc));
    assert!(swc.rdc.epoch_bumps > 0);
    assert!(
        swc.rdc.stale_misses > 0,
        "flushes never invalidated anything"
    );
    let nc = run(&spec, &tiny_sim(Design::CarveNc));
    assert_eq!(nc.rdc.stale_misses, 0, "NC must never see stale epochs");
}

#[test]
fn hardware_coherence_invalidates_remote_copies() {
    let spec = tiny("SSSP");
    let hwc = run(&spec, &tiny_sim(Design::CarveHwc));
    assert!(hwc.broadcasts > 0, "RW-shared graph updates must broadcast");
    assert!(hwc.rdc.invalidations > 0, "broadcasts must reach RDCs");
    let nc = run(&spec, &tiny_sim(Design::CarveNc));
    assert_eq!(nc.broadcasts, 0);
}

#[test]
fn results_are_bit_deterministic() {
    let spec = tiny("HPGMG");
    let a = run(&spec, &tiny_sim(Design::CarveHwc));
    let b = run(&spec, &tiny_sim(Design::CarveHwc));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.link_bytes, b.link_bytes);
    assert_eq!(a.rdc.hits, b.rdc.hits);
    assert_eq!(a.broadcasts, b.broadcasts);
    assert_eq!(a.dram.bytes_transferred, b.dram.bytes_transferred);
}

#[test]
fn profile_reuse_matches_internal_profiling() {
    let spec = tiny("AlexNet");
    let cfg = tiny_cfg();
    let profile = profile_workload(&spec, &cfg, cfg.num_gpus);
    let sim = tiny_sim(Design::NumaGpuRepl);
    let a = run_with_profile(&spec, &sim, Some(&profile));
    let b = run(&spec, &sim);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn replication_fixes_read_only_ml_workloads() {
    let spec = tiny("AlexNet");
    let base = run(&spec, &tiny_sim(Design::NumaGpu));
    let repl = run(&spec, &tiny_sim(Design::NumaGpuRepl));
    let ideal = run(&spec, &tiny_sim(Design::Ideal));
    assert!(repl.cycles < base.cycles);
    // RO replication should land essentially on the ideal point.
    let rel = ideal.cycles as f64 / repl.cycles as f64;
    assert!(rel > 0.95, "RO replication only reached {rel:.2} of ideal");
}

#[test]
fn streaming_workloads_have_no_numa_problem() {
    let spec = tiny("stream-triad");
    let base = run(&spec, &tiny_sim(Design::NumaGpu));
    assert!(
        base.remote_fraction() < 0.02,
        "first-touch should localize private streams: {:.3}",
        base.remote_fraction()
    );
    assert_eq!(base.migrations, 0);
}

#[test]
fn migration_charges_link_traffic() {
    let spec = tiny("Lulesh");
    let base = run(&spec, &tiny_sim(Design::NumaGpu));
    let mig = run(&spec, &tiny_sim(Design::NumaGpuMigrate));
    assert!(mig.migrations > 0);
    // Page payloads cross the links on top of regular traffic.
    let page = tiny_cfg().page_size;
    assert!(mig.link_bytes >= base.link_bytes.saturating_sub(mig.migrations * page));
}

#[test]
fn spill_fraction_slows_things_down_monotonically_ish() {
    let spec = tiny("MCB");
    let mut cycles = Vec::new();
    for frac in [0.0, 0.1, 0.3] {
        let mut sim = tiny_sim(Design::NumaGpu);
        sim.spill_fraction = frac;
        let r = run(&spec, &sim);
        assert!(r.completed);
        cycles.push(r.cycles);
    }
    assert!(
        cycles[2] > cycles[0],
        "30% spill must cost something: {cycles:?}"
    );
}

#[test]
fn rdc_capacity_zero_is_rejected_for_carve() {
    let spec = tiny("Lulesh");
    let mut sim = tiny_sim(Design::CarveHwc);
    sim.rdc_bytes = Some(0);
    let result = std::panic::catch_unwind(|| run(&spec, &sim));
    assert!(result.is_err(), "zero RDC must be rejected");
}

#[test]
fn bigger_rdc_never_hurts_a_table_workload() {
    let spec = tiny("XSBench");
    let mut small = tiny_sim(Design::CarveHwc);
    small.rdc_bytes = Some(64 * 1024);
    let mut large = tiny_sim(Design::CarveHwc);
    large.rdc_bytes = Some(16 * 1024 * 1024);
    let rs = run(&spec, &small);
    let rl = run(&spec, &large);
    assert!(
        rl.rdc.hit_rate() >= rs.rdc.hit_rate(),
        "hit rate must not drop with capacity: {} vs {}",
        rl.rdc.hit_rate(),
        rs.rdc.hit_rate()
    );
}

#[test]
fn link_bandwidth_sweep_behaves_like_fig14() {
    let spec = tiny("Lulesh");
    // NUMA-GPU gains with faster links; CARVE is largely insensitive.
    let mut slow_base = tiny_sim(Design::NumaGpu);
    slow_base.cfg.link_bytes_per_cycle /= 2.0;
    let mut fast_base = tiny_sim(Design::NumaGpu);
    fast_base.cfg.link_bytes_per_cycle *= 4.0;
    let slow = run(&spec, &slow_base);
    let fast = run(&spec, &fast_base);
    assert!(fast.cycles < slow.cycles, "faster links must help NUMA-GPU");

    let mut slow_carve = tiny_sim(Design::CarveHwc);
    slow_carve.cfg.link_bytes_per_cycle /= 2.0;
    let mut fast_carve = tiny_sim(Design::CarveHwc);
    fast_carve.cfg.link_bytes_per_cycle *= 4.0;
    let cs = run(&spec, &slow_carve);
    let cf = run(&spec, &fast_carve);
    let carve_sensitivity = cs.cycles as f64 / cf.cycles as f64;
    let base_sensitivity = slow.cycles as f64 / fast.cycles as f64;
    assert!(
        carve_sensitivity < base_sensitivity,
        "CARVE ({carve_sensitivity:.2}) must be less link-sensitive than \
         NUMA-GPU ({base_sensitivity:.2})"
    );
}

#[test]
fn single_gpu_design_is_self_consistent() {
    let spec = tiny("CoMD");
    let r = run(&spec, &tiny_sim(Design::SingleGpu));
    assert!(r.completed);
    assert_eq!(r.remote_serviced, 0);
    assert_eq!(r.link_bytes, 0);
    assert_eq!(r.cpu_link_bytes, 0);
    assert_eq!(r.broadcasts, 0);
}

#[test]
fn directory_coherence_targets_fewer_messages() {
    let spec = tiny("SSSP");
    let bcast = run(&spec, &tiny_sim(Design::CarveHwc));
    let mut sim = tiny_sim(Design::CarveHwc);
    sim.directory_coherence = true;
    let dir = run(&spec, &sim);
    assert!(dir.completed);
    assert!(dir.directory_invalidates > 0, "directory never invalidated");
    // Broadcast fans out to (gpus-1) = 3 messages per decision; the
    // directory sends only to true sharers.
    assert!(
        dir.directory_invalidates < bcast.broadcasts * 3,
        "directory {} must beat broadcast fan-out {}",
        dir.directory_invalidates,
        bcast.broadcasts * 3
    );
    // Same workload completes with the same instruction count.
    assert_eq!(dir.instructions, bcast.instructions);
}

#[test]
fn sysmem_rdc_reduces_cpu_link_traffic() {
    let spec = tiny("MCB");
    let mut base = tiny_sim(Design::CarveHwc);
    base.spill_fraction = 0.3;
    let off = run(&spec, &base);
    let mut sim = base;
    sim.rdc_caches_sysmem = true;
    let on = run(&spec, &sim);
    assert!(on.completed);
    assert!(
        on.cpu_link_bytes < off.cpu_link_bytes,
        "caching sysmem in the RDC must cut CPU traffic: {} vs {}",
        on.cpu_link_bytes,
        off.cpu_link_bytes
    );
}

#[test]
fn eight_gpu_system_runs_and_scales() {
    let spec = tiny("stream-triad");
    let mut cfg = tiny_cfg();
    cfg.num_gpus = 8;
    let single = run(&spec, &SimConfig::with_cfg(Design::SingleGpu, cfg.clone()));
    let eight = run(&spec, &SimConfig::with_cfg(Design::NumaGpu, cfg));
    assert!(eight.completed);
    assert!(
        eight.speedup_over(&single) > 2.0,
        "8 GPUs only {:.2}x on streaming",
        eight.speedup_over(&single)
    );
}

#[test]
fn write_back_rdc_close_to_write_through() {
    let spec = tiny("Euler");
    let wt = run(&spec, &tiny_sim(Design::CarveHwc));
    let mut sim = tiny_sim(Design::CarveHwc);
    sim.rdc_write_policy = carve::WritePolicy::WriteBack;
    let wb = run(&spec, &sim);
    assert!(wb.completed);
    let ratio = wb.cycles as f64 / wt.cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "write policies should perform similarly: {ratio:.2}"
    );
}

#[test]
fn broadcast_always_sends_more_invalidates() {
    let spec = tiny("Lulesh");
    let filtered = run(&spec, &tiny_sim(Design::CarveHwc));
    let mut sim = tiny_sim(Design::CarveHwc);
    sim.gpu_vi_broadcast_always = true;
    let raw = run(&spec, &sim);
    assert!(raw.completed);
    assert!(
        raw.rdc.invalidations >= filtered.rdc.invalidations,
        "IMST filter must not increase invalidations"
    );
}

#[test]
fn watchdog_never_false_positives_across_all_workloads() {
    // Budget far below each run's total length but far above any
    // legitimate progress gap (horizon jumps, drain windows, kernel
    // launches): a dead window anywhere in the engine would trip it.
    for spec in workloads::all() {
        let mut spec = spec;
        spec.shape.kernels = 2;
        spec.shape.ctas = 16;
        spec.shape.instrs_per_warp = 40;
        let mut sim = tiny_sim(Design::CarveHwc);
        sim.watchdog_cycles = Some(50_000);
        let r = carve_system::try_run(&spec, &sim);
        assert!(
            r.is_ok(),
            "{} tripped the watchdog: {}",
            spec.name,
            r.unwrap_err()
        );
    }
}

#[test]
fn invalid_config_surfaces_as_structured_error() {
    let spec = tiny("Lulesh");
    let mut sim = tiny_sim(Design::CarveHwc);
    sim.rdc_bytes = Some(0);
    match carve_system::try_run(&spec, &sim) {
        Err(carve_system::SimError::ConfigInvalid { message }) => {
            assert!(
                message.contains("rdc"),
                "message should name the knob: {message}"
            );
        }
        other => panic!("zero RDC must be ConfigInvalid, got {other:?}"),
    }
}
