//! Replays the checked-in chaos fixture corpus (`tests/chaos/*.chaos`).
//!
//! Each fixture is a minimized fault-injection scenario — found by
//! `carve-sim fuzz` or written by hand — together with the outcome it
//! must produce. Replaying pins two properties at once: the graceful
//! degradation contract (graceful plans complete or partition cleanly;
//! lossy plans are caught by the watchdog or sanitizer oracles, never a
//! hang or panic), and fault-path engine equivalence (every scenario
//! runs under event-skip *and* stepping and must agree).

use std::collections::BTreeSet;
use std::path::PathBuf;

use carve_system::{ChaosFixture, ChaosOutcome};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/chaos")
}

fn corpus() -> Vec<(String, ChaosFixture)> {
    let dir = corpus_dir();
    let mut fixtures = Vec::new();
    for entry in std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
    {
        let path = entry.expect("corpus dir entry").path();
        if path.extension().and_then(|s| s.to_str()) != Some("chaos") {
            continue;
        }
        let name = path
            .file_name()
            .expect("fixture file name")
            .to_string_lossy()
            .into_owned();
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
        let fixture =
            ChaosFixture::parse(&text).unwrap_or_else(|e| panic!("cannot parse {name}: {e}"));
        fixtures.push((name, fixture));
    }
    // Deterministic replay order regardless of directory iteration order.
    fixtures.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(!fixtures.is_empty(), "chaos corpus is empty");
    fixtures
}

/// Every fixture must reproduce its recorded outcome, with both engines
/// agreeing (run_both_engines also compares journal bytes and recovery
/// accounting when the run completes).
#[test]
fn corpus_replays_to_recorded_outcomes_under_both_engines() {
    for (name, fixture) in corpus() {
        let outcome = fixture
            .scenario
            .run_both_engines()
            .unwrap_or_else(|divergence| panic!("{name}: {divergence}"));
        assert_eq!(
            outcome, fixture.expect,
            "{name}: replay produced {:?}, fixture records {:?}",
            outcome, fixture.expect
        );
    }
}

/// The corpus must keep exercising every oracle-visible outcome class:
/// graceful completion, clean partition, watchdog stall, and a sanitizer
/// violation. A class silently dropping out would mean that failure mode
/// is no longer regression-tested.
#[test]
fn corpus_covers_every_oracle_class() {
    let classes: BTreeSet<String> = corpus()
        .iter()
        .map(|(_, f)| match &f.expect {
            ChaosOutcome::Sanitizer(_) => "sanitizer".to_string(),
            other => other.encode(),
        })
        .collect();
    for required in ["ok", "partitioned", "watchdog", "sanitizer"] {
        assert!(
            classes.contains(required),
            "corpus covers {classes:?} but is missing the '{required}' class"
        );
    }
}

/// Serialization sanity on the real corpus: parse -> encode -> parse is
/// the identity, so fixtures survive round trips through the fuzzer.
#[test]
fn corpus_round_trips_through_encode() {
    for (name, fixture) in corpus() {
        let reparsed = ChaosFixture::parse(&fixture.encode())
            .unwrap_or_else(|e| panic!("{name}: re-parse failed: {e}"));
        assert_eq!(reparsed, fixture, "{name}");
    }
}
