//! End-to-end tests of the `carve-sim` binary's exit-code contract.
//!
//! Campaign wrappers and CI scripts branch on these codes (0 success,
//! 1 failure, 2 usage, 3 watchdog stall), so they are part of the public
//! interface and are pinned here against the real binary.

use std::process::Command;

/// A `carve-sim` invocation against the workspace-built binary.
fn carve_sim(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_carve-sim"));
    cmd.args(args);
    cmd
}

/// Small-machine overrides so a full `run` finishes in well under a
/// second; mirrors the `quick_cfg` used by the library tests.
const QUICK_GPUS: &str = "2";

#[test]
fn list_succeeds() {
    let out = carve_sim(&["list"]).output().expect("spawn carve-sim");
    assert!(out.status.success(), "list failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("XSBench"), "list output lacks workloads");
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["frobnicate"][..],
        &["run"][..],
        &["run", "no-such-workload"][..],
        &["run", "XSBench", "--design", "nope"][..],
        &["compare"][..],
    ] {
        let out = carve_sim(args).output().expect("spawn carve-sim");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn injected_stall_exits_3_with_diagnostic() {
    let out = carve_sim(&[
        "run",
        "stream-triad",
        "--design",
        "numa",
        "--gpus",
        QUICK_GPUS,
        "--stall-inject-at",
        "2000",
    ])
    // A small no-progress budget so the stall is detected quickly; the
    // hidden flag freezes every component so this cannot false-negative.
    .env("CARVE_WATCHDOG_CYCLES", "20000")
    .output()
    .expect("spawn carve-sim");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stalled run should exit 3, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("watchdog") || err.contains("stall"),
        "stderr lacks a stall diagnostic:\n{err}"
    );
}

#[test]
fn sanitized_run_succeeds_and_matches_plain_run() {
    let run = |extra: &[&str]| {
        let mut args = vec!["run", "stream-triad", "--gpus", QUICK_GPUS];
        args.extend_from_slice(extra);
        let out = carve_sim(&args).output().expect("spawn carve-sim");
        assert!(
            out.status.success(),
            "run {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // The sanitizer is observe-only: the printed report (cycles, traffic,
    // latencies — everything) must be byte-identical with it enabled.
    assert_eq!(run(&[]), run(&["--sanitize"]));
}

#[test]
fn partitioning_outage_exits_1_naming_the_severed_pair() {
    // On a 2-GPU mesh, edge e0 is the only gpu0->gpu1 path, so killing it
    // severs the fabric: a clean FabricPartitioned failure (exit 1), not
    // a hang masked later by the watchdog (exit 3).
    let out = carve_sim(&[
        "run",
        "stream-triad",
        "--design",
        "numa",
        "--gpus",
        QUICK_GPUS,
        "--faults",
        "outage@600:e0",
    ])
    .output()
    .expect("spawn carve-sim");
    assert_eq!(
        out.status.code(),
        Some(1),
        "partitioned run should exit 1, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("gpu0") && err.contains("gpu1") && err.contains("partition"),
        "stderr lacks the severed pair:\n{err}"
    );
}

#[test]
fn faulted_run_survives_and_reports_recovery() {
    let out = carve_sim(&[
        "run",
        "stream-triad",
        "--design",
        "numa",
        "--gpus",
        QUICK_GPUS,
        "--sanitize",
        "--faults",
        "degrade@300:e0*25,dramfault@500:g1n3,freeze@700+200,restore@1200:e0",
    ])
    .output()
    .expect("spawn carve-sim");
    assert!(
        out.status.success(),
        "graceful faults should be absorbed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("recovery:")
            && text.contains("faults=4")
            && text.contains("frozen_cycles=200"),
        "report lacks recovery accounting:\n{text}"
    );
    // A malformed plan is a usage error, caught before any simulation.
    let bad = carve_sim(&["run", "stream-triad", "--faults", "explode@99"])
        .output()
        .expect("spawn carve-sim");
    assert_eq!(bad.status.code(), Some(2));
}

#[test]
fn fuzz_smoke_batch_stays_in_contract() {
    // A small fixed-seed batch: every scenario must complete, partition,
    // or be caught by an oracle, under both engines — exit 0. Any panic,
    // hang, or engine divergence fails the batch.
    let out = carve_sim(&["fuzz", "--seed", "1", "--runs", "4"])
        .output()
        .expect("spawn carve-sim");
    assert!(
        out.status.success(),
        "fuzz batch failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("fuzz: 4 runs:") && err.contains("0 failures"),
        "unexpected fuzz summary:\n{err}"
    );
}

#[test]
fn profile_subcommand_writes_wellformed_artifacts() {
    let dir = std::env::temp_dir().join(format!("carve-profile-cli-{}", std::process::id()));
    let out = carve_sim(&[
        "profile",
        "stream-triad",
        "--gpus",
        QUICK_GPUS,
        "--out",
        dir.to_str().expect("utf-8 tempdir"),
    ])
    .output()
    .expect("spawn carve-sim");
    assert!(
        out.status.success(),
        "profile run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("sharing profile") && text.contains("category"),
        "profile output lacks the sharing section or the cycle table:\n{text}"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("stalls:"),
        "stderr summary lacks the top-stall breakdown:\n{err}"
    );
    // Folded stacks: every line is `stack count` with a numeric count.
    let folded = std::fs::read_to_string(dir.join("profile.folded")).expect("profile.folded");
    assert!(!folded.trim().is_empty());
    for line in folded.lines() {
        let mut parts = line.rsplitn(2, ' ');
        let count = parts.next().expect("count field");
        let stack = parts.next().unwrap_or("");
        assert!(
            !stack.is_empty() && count.parse::<u64>().is_ok(),
            "malformed folded line: {line:?}"
        );
    }
    let csv = std::fs::read_to_string(dir.join("stalls.csv")).expect("stalls.csv");
    assert!(
        csv.starts_with("start,end,gpu,issuing,"),
        "stalls.csv header missing:\n{}",
        csv.lines().next().unwrap_or("")
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_subcommand_usage_errors_exit_2() {
    for args in [
        &["profile"][..],
        &["profile", "no-such-workload"][..],
        &["profile", "stream-triad", "--bogus"][..],
        &["profile", "stream-triad", "--interval", "0"][..],
    ] {
        let out = carve_sim(args).output().expect("spawn carve-sim");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?} should exit 2, got {:?}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn run_with_profile_prints_top_stalls_without_changing_the_report() {
    let run = |extra: &[&str]| {
        let mut args = vec!["run", "stream-triad", "--gpus", QUICK_GPUS];
        args.extend_from_slice(extra);
        let out = carve_sim(&args).output().expect("spawn carve-sim");
        assert!(
            out.status.success(),
            "run {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (plain_out, plain_err) = run(&[]);
    let (prof_out, prof_err) = run(&["--profile"]);
    // The profiler is observe-only: the printed report is byte-identical.
    assert_eq!(plain_out, prof_out);
    assert!(
        !plain_err.contains("stalls:"),
        "unprofiled summary must not carry a stall breakdown:\n{plain_err}"
    );
    assert!(
        prof_err.contains("stalls:"),
        "profiled summary lacks the stall breakdown:\n{prof_err}"
    );
}

fn workspace_root() -> &'static std::path::Path {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")) // crates/system
        .ancestors()
        .nth(2)
        .expect("workspace root above crates/system")
}

#[test]
fn audit_subcommand_scans_this_workspace_clean() {
    let root = workspace_root();
    let out = carve_sim(&["audit", root.to_str().expect("utf-8 path")])
        .output()
        .expect("spawn carve-sim");
    assert!(
        out.status.success(),
        "audit found violations:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("clean"), "unexpected audit output: {text}");
}

#[test]
fn audit_lint_json_emits_machine_readable_findings() {
    // `audit lint --json` shares carve-audit's entry point; a clean tree
    // must still produce the document shape wrappers parse.
    let root = workspace_root();
    let out = carve_sim(&[
        "audit",
        "lint",
        "--json",
        root.to_str().expect("utf-8 path"),
    ])
    .output()
    .expect("spawn carve-sim");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"findings\": []"),
        "expected no findings: {text}"
    );
    assert!(
        text.contains("\"files_scanned\": "),
        "missing scan count: {text}"
    );
}

#[test]
fn audit_usage_errors_exit_2() {
    // A bare argument is treated as a lint ROOT (historical interface),
    // so a non-workspace path must fail the usage way, not panic.
    for args in [
        &["audit", "/definitely/not/a/workspace"][..],
        &["audit", "lint", "--bogus"][..],
        &["audit", "effects", "--out"][..],
    ] {
        let out = carve_sim(args).output().expect("spawn carve-sim");
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn audit_effects_regenerates_the_committed_snapshot() {
    let root = workspace_root();
    let dest = std::env::temp_dir().join(format!("cli-effects-{}.tsv", std::process::id()));
    let out = carve_sim(&[
        "audit",
        "effects",
        "--out",
        dest.to_str().expect("utf-8 path"),
        root.to_str().expect("utf-8 path"),
    ])
    .output()
    .expect("spawn carve-sim");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fresh = std::fs::read_to_string(&dest).expect("effects output");
    let _ = std::fs::remove_file(&dest);
    assert!(fresh.starts_with("file\tfunction\tfield\taccess\tclass\tnote"));
    let committed = std::fs::read_to_string(root.join("results/effects.tsv"))
        .expect("committed results/effects.tsv");
    assert_eq!(
        committed, fresh,
        "results/effects.tsv is stale; regenerate with `carve-sim audit effects`"
    );
}
