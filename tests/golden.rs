//! Golden bit-identity fixtures for the simulation datapath.
//!
//! Every fixture is the byte-exact [`SimResult::encode_journal_line`]
//! encoding of one (workload × configuration) point, generated at a known
//! commit and checked in under `tests/golden/`. The tests replay each
//! point — under both the event-skip engine and `CARVE_STEP`-style
//! stepping — and assert the journal line is *byte-identical* to the
//! fixture. Any change to lookup structures, iteration order, token
//! encoding, or arithmetic in the hot path that perturbs results by even
//! one count fails here.
//!
//! Two fixture sets:
//!
//! * `all20_carve_hwc.journal` — all 20 Table II workloads under
//!   `CarveHwc` (the design exercising the RDC, IMST, store watch and
//!   probe flows),
//! * `representative.journal` — five representative workloads (streaming,
//!   stencil, graph, MC-lookup, DNN) across a design/knob matrix that
//!   covers migration, replication, spill (CPU reads), the footnote-2
//!   sysmem RDC, directory coherence and the hit predictor.
//!
//! Regenerate (after an *intentional* result change) with:
//!
//! ```text
//! CARVE_GOLDEN_REGEN=1 cargo test --release -p carve-system --test golden
//! ```
//!
//! and audit the diff line by line before committing.

use carve_system::{run_with_profile_mode, workloads, Design, EngineMode, ScaledConfig, SimConfig};
use carve_trace::WorkloadSpec;
use std::path::PathBuf;

/// streaming, stencil, graph, MC-lookup, DNN.
const REPRESENTATIVE: [&str; 5] = ["stream-triad", "Lulesh", "SSSP", "XSBench", "AlexNet"];

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// A narrow machine and short kernels so the full matrix stays fast in
/// debug builds while still driving every datapath flow.
fn golden_cfg() -> ScaledConfig {
    ScaledConfig {
        sms_per_gpu: 2,
        warps_per_sm: 8,
        ..ScaledConfig::default()
    }
}

fn golden_spec(name: &str) -> WorkloadSpec {
    let mut spec = workloads::by_name(name).expect("known workload");
    spec.shape.kernels = spec.shape.kernels.min(2);
    spec.shape.ctas = 16;
    spec.shape.instrs_per_warp = spec.shape.instrs_per_warp.min(80);
    spec
}

fn sim_of(design: Design) -> SimConfig {
    let mut sim = SimConfig::with_cfg(design, golden_cfg());
    sim.telemetry_interval = Some(0); // aggregates only; independent of env
    sim
}

/// The representative-matrix points: `(fixture key, workload, config)`.
fn representative_points() -> Vec<(String, WorkloadSpec, SimConfig)> {
    let mut points = Vec::new();
    for name in REPRESENTATIVE {
        let spec = golden_spec(name);
        for design in [
            Design::NumaGpu,
            Design::NumaGpuMigrate,
            Design::NumaGpuRepl,
            Design::Ideal,
            Design::CarveHwc,
        ] {
            points.push((
                format!("{name}|{}", design.label()),
                spec.clone(),
                sim_of(design),
            ));
        }
        // UM spill: exercises CPU reads/writes over the CPU links.
        let mut spill = sim_of(Design::NumaGpu);
        spill.spill_fraction = 0.2;
        points.push((format!("{name}|numa-gpu+spill"), spec.clone(), spill));
        // Footnote 2: the RDC also caches system memory (CpuRead fills).
        let mut sysmem = sim_of(Design::CarveHwc);
        sysmem.spill_fraction = 0.2;
        sysmem.rdc_caches_sysmem = true;
        points.push((format!("{name}|carve-hwc+sysrdc"), spec.clone(), sysmem));
        // Directory coherence (Section V-E) instead of broadcast.
        let mut dir = sim_of(Design::CarveHwc);
        dir.directory_coherence = true;
        points.push((format!("{name}|carve-hwc+dir"), spec.clone(), dir));
        // RDC hit predictor (probe bypass on predicted misses).
        let mut pred = sim_of(Design::CarveHwc);
        pred.hit_predictor = true;
        points.push((format!("{name}|carve-hwc+pred"), spec, pred));
    }
    points
}

/// All 20 Table II workloads under the full CARVE design.
fn all20_points() -> Vec<(String, WorkloadSpec, SimConfig)> {
    workloads::all()
        .iter()
        .map(|w| {
            (
                format!("{}|{}", w.name, Design::CarveHwc.label()),
                golden_spec(w.name),
                sim_of(Design::CarveHwc),
            )
        })
        .collect()
}

fn encode(points: &[(String, WorkloadSpec, SimConfig)], mode: EngineMode) -> Vec<String> {
    points
        .iter()
        .map(|(key, spec, sim)| {
            let r = run_with_profile_mode(spec, sim, None, mode);
            format!("{key}|{}", r.encode_journal_line())
        })
        .collect()
}

/// Compares freshly simulated journal lines against the fixture file, or
/// rewrites the file when `CARVE_GOLDEN_REGEN` is set.
fn check_against_fixture(fixture: &str, lines: Vec<String>) {
    let path = fixture_path(fixture);
    if std::env::var_os("CARVE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&path, lines.join("\n") + "\n").expect("write fixture");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); generate with CARVE_GOLDEN_REGEN=1",
            path.display()
        )
    });
    let want: Vec<&str> = text.lines().collect();
    assert_eq!(
        want.len(),
        lines.len(),
        "{fixture}: fixture has {} lines, run produced {}",
        want.len(),
        lines.len()
    );
    for (got, want) in lines.iter().zip(&want) {
        assert_eq!(
            got, want,
            "{fixture}: journal line diverged from the golden fixture \
             (datapath change is result-visible)"
        );
    }
}

#[test]
fn all20_event_skip_matches_golden() {
    check_against_fixture(
        "all20_carve_hwc.journal",
        encode(&all20_points(), EngineMode::EventSkip),
    );
}

#[test]
fn all20_step_engine_matches_golden() {
    check_against_fixture(
        "all20_carve_hwc.journal",
        encode(&all20_points(), EngineMode::Step),
    );
}

#[test]
fn representative_event_skip_matches_golden() {
    check_against_fixture(
        "representative.journal",
        encode(&representative_points(), EngineMode::EventSkip),
    );
}

#[test]
fn representative_step_engine_matches_golden() {
    check_against_fixture(
        "representative.journal",
        encode(&representative_points(), EngineMode::Step),
    );
}
