//! Coherence design-space study (the paper's Section IV-B).
//!
//! Runs an iterative stencil workload under the three RDC coherence
//! designs and shows *why* software coherence fails for giga-scale DRAM
//! caches: the epoch flush at every kernel boundary destroys the
//! inter-kernel locality the RDC exists to capture, while GPU-VI hardware
//! coherence filtered by the In-Memory Sharing Tracker keeps invalidation
//! traffic negligible.
//!
//! ```text
//! cargo run --release -p carve-system --example coherence_study
//! ```

use carve_system::{profile_workload, run_with_profile, workloads, Design, SimConfig};

fn main() {
    let spec = workloads::by_name("HPGMG").expect("known workload");
    let cfg = SimConfig::new(Design::CarveNc).cfg;
    let profile = profile_workload(&spec, &cfg, cfg.num_gpus);
    let ideal = run_with_profile(&spec, &SimConfig::new(Design::Ideal), Some(&profile));

    println!(
        "{} runs {} kernels; the RDC only pays off if its contents survive\n\
         kernel boundaries.\n",
        spec.name, spec.shape.kernels
    );
    println!(
        "{:>12} {:>9} {:>9} {:>10} {:>12} {:>12} {:>12}",
        "design", "cycles", "vs-ideal", "RDC hits", "stale misses", "invalidates", "broadcasts"
    );
    for design in [Design::CarveSwc, Design::CarveHwc, Design::CarveNc] {
        let r = run_with_profile(&spec, &SimConfig::new(design), Some(&profile));
        println!(
            "{:>12} {:>9} {:>9.2} {:>10} {:>12} {:>12} {:>12}",
            r.design.label(),
            r.cycles,
            r.performance_vs(&ideal),
            r.rdc.hits,
            r.rdc.stale_misses,
            r.rdc.invalidations,
            r.broadcasts,
        );
    }
    println!(
        "\nSWC's stale misses are exactly the inter-kernel reuse the epoch\n\
         flush throws away; HWC keeps that reuse and pays only targeted\n\
         write-invalidates on genuinely read-write-shared lines."
    );
}
