//! Bring your own workload: define a custom memory-access model, inspect
//! its NUMA sharing profile, and evaluate whether CARVE would help it.
//!
//! The scenario here is a particle-in-cell style application: a private
//! particle array, a shared field grid updated by scattered deposits, and
//! a read-only interpolation table.
//!
//! ```text
//! cargo run --release -p carve-system --example custom_workload
//! ```

use carve_system::{profile_workload, run_with_profile, Design, ScaledConfig, SimConfig};
use carve_trace::{KernelShape, Pattern, RegionSpec, Sharing, Suite, WorkloadSpec};
use sim_core::units::MIB;

fn main() {
    let spec = WorkloadSpec {
        name: "pic-demo",
        suite: Suite::Hpc,
        paper_footprint: 900 * MIB,
        shape: KernelShape {
            kernels: 12,
            ctas: 128,
            warps_per_cta: 4,
            instrs_per_warp: 160,
        },
        mem_fraction: 0.45,
        regions: vec![
            // Particles: private per CTA, streamed, rewritten each step.
            RegionSpec {
                paper_bytes: 512 * MIB,
                pattern: Pattern::Sequential,
                sharing: Sharing::PrivatePerCta,
                write_prob: 0.4,
                rw_line_permille: 1000,
                weight: 0.5,
            },
            // Field grid: every GPU reads it; scattered deposits make most
            // pages read-write shared (the case software replication
            // cannot handle).
            RegionSpec {
                paper_bytes: 320 * MIB,
                pattern: Pattern::Zipf(0.5),
                sharing: Sharing::SharedAll,
                write_prob: 0.08,
                rw_line_permille: 60,
                weight: 0.4,
            },
            // Interpolation table: shared, strictly read-only.
            RegionSpec {
                paper_bytes: 68 * MIB,
                pattern: Pattern::Zipf(0.8),
                sharing: Sharing::SharedAll,
                write_prob: 0.0,
                rw_line_permille: 0,
                weight: 0.1,
            },
        ],
        remap_ctas_between_kernels: false,
        seed: 0xD340,
    };

    // Step 1: profile the sharing structure (the paper's Figure 4 method).
    let cfg = ScaledConfig::default();
    let profile = profile_workload(&spec, &cfg, cfg.num_gpus);
    let (pp, pro, prw) = profile.page_breakdown().fractions();
    let (lp, lro, lrw) = profile.line_breakdown().fractions();
    println!("sharing profile of {}:", spec.name);
    println!(
        "  page granularity: {:4.1}% private, {:4.1}% RO-shared, {:4.1}% RW-shared",
        100.0 * pp,
        100.0 * pro,
        100.0 * prw
    );
    println!(
        "  line granularity: {:4.1}% private, {:4.1}% RO-shared, {:4.1}% RW-shared",
        100.0 * lp,
        100.0 * lro,
        100.0 * lrw
    );
    println!(
        "  replicating all shared pages would grow the footprint {:.1}x",
        profile.replication_footprint_multiplier()
    );

    // Step 2: would the software fixes be enough, or do we need CARVE?
    let mut results = Vec::new();
    for design in [
        Design::NumaGpu,
        Design::NumaGpuRepl,
        Design::CarveHwc,
        Design::Ideal,
    ] {
        let sim = SimConfig::new(design);
        results.push(run_with_profile(&spec, &sim, Some(&profile)));
    }
    let ideal_cycles = results.last().expect("ideal run").cycles;
    println!("\ndesign comparison (relative to ideal):");
    for r in &results {
        println!(
            "  {:18} {:>9} cycles  ({:.2} of ideal, {:4.1}% remote)",
            r.design.label(),
            r.cycles,
            ideal_cycles as f64 / r.cycles as f64,
            100.0 * r.remote_fraction()
        );
    }
}
