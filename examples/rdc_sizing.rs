//! RDC sizing study: how much GPU memory should be carved out?
//!
//! Sweeps the Remote Data Cache capacity for a table-lookup workload
//! (XSBench) and reports the performance / capacity-loss trade-off the
//! paper's Table V explores: small carve-outs already eliminate most NUMA
//! traffic, while workloads with multi-GB shared working sets keep gaining
//! from larger ones.
//!
//! ```text
//! cargo run --release -p carve-system --example rdc_sizing
//! ```

use carve_system::{profile_workload, run_with_profile, workloads, Design, SimConfig};
use sim_core::units::fmt_bytes;

fn main() {
    let spec = workloads::by_name("XSBench").expect("known workload");
    let base = SimConfig::new(Design::CarveHwc);
    let cfg = &base.cfg;
    let profile = profile_workload(&spec, cfg, cfg.num_gpus);

    let baseline = run_with_profile(&spec, &SimConfig::new(Design::NumaGpu), Some(&profile));
    println!(
        "XSBench on NUMA-GPU without CARVE: {} cycles, {:.1}% remote\n",
        baseline.cycles,
        100.0 * baseline.remote_fraction()
    );
    println!(
        "{:>14} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "RDC/GPU", "(paper)", "carve-out", "cycles", "speedup", "RDC hits"
    );

    // Paper sizes: 0.5, 1, 2, 4 GB per GPU (scaled to the simulated
    // machine automatically through the capacity scale).
    for paper_gib_halves in [1u64, 2, 4, 8, 16] {
        let paper_bytes = paper_gib_halves << 29;
        let mut sim = SimConfig::new(Design::CarveHwc);
        let rdc = paper_bytes / sim.cfg.capacity_scale;
        sim.rdc_bytes = Some(rdc);
        let r = run_with_profile(&spec, &sim, Some(&profile));
        println!(
            "{:>14} {:>10} {:>9.2}% {:>9} {:>8.2}x {:>8.1}%",
            fmt_bytes(rdc),
            fmt_bytes(paper_bytes),
            100.0 * rdc as f64 / sim.cfg.mem_bytes_per_gpu as f64,
            r.cycles,
            baseline.cycles as f64 / r.cycles as f64,
            100.0 * r.rdc.hit_rate(),
        );
    }
    println!("\n(speedup is vs. NUMA-GPU; the paper picks 2 GB = 6.25% of GPU memory)");
}
