//! Quickstart: simulate one workload on the 4-GPU NUMA system, with and
//! without CARVE, and print what changed.
//!
//! ```text
//! cargo run --release -p carve-system --example quickstart
//! ```

use carve_system::{run, workloads, Design, SimConfig};

fn main() {
    // Pick a workload from the paper's Table II by its abbreviation.
    let spec = workloads::by_name("Lulesh").expect("known workload");
    println!(
        "workload: {} ({} kernels x {} CTAs x {} warps)",
        spec.name, spec.shape.kernels, spec.shape.ctas, spec.shape.warps_per_cta
    );

    // Baseline NUMA-GPU: first-touch placement + remote caching in the LLC.
    let baseline = run(&spec, &SimConfig::new(Design::NumaGpu));
    // The paper's proposal: NUMA-GPU + CARVE with hardware coherence.
    let carve = run(&spec, &SimConfig::new(Design::CarveHwc));
    // The upper bound: every shared page replicated locally for free.
    let ideal = run(&spec, &SimConfig::new(Design::Ideal));

    for r in [&baseline, &carve, &ideal] {
        println!(
            "{:>10}: {:>9} cycles, ipc {:>5.2}, remote accesses {:>5.1}%, RDC hit rate {:>5.1}%",
            r.design.label(),
            r.cycles,
            r.ipc(),
            100.0 * r.remote_fraction(),
            100.0 * r.rdc.hit_rate(),
        );
    }
    println!(
        "\nCARVE recovers {:.0}% of the NUMA performance gap \
         (baseline {:.2} -> carve {:.2} of ideal)",
        100.0 * (carve.performance_vs(&ideal) - baseline.performance_vs(&ideal))
            / (1.0 - baseline.performance_vs(&ideal)).max(1e-9),
        baseline.performance_vs(&ideal),
        carve.performance_vs(&ideal),
    );
}
